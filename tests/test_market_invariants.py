"""Property-based (hypothesis) market invariants.

The token market's contract, enforced over generated workloads:

* **conservation** — every tick, guaranteed + spare grants fit inside
  the cluster capacity;
* **quota** — no tenant's live guarantees ever exceed its quota;
* **guarantee protection** — an admitted job's grant never drops below
  ``min(guarantee, demand)``: spare traffic cannot displace it;
* **price monotonicity** — the clearing price is monotone non-decreasing
  in aggregate demand;
* **termination** — every admitted job finishes (and every submitted job
  reaches a terminal state: completed or rejected).
"""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.market.arbiter import Bid, MarketArbiter
from repro.market.engine import MarketConfig, TokenMarket
from repro.market.tenant import JobSpec, Tenant
from repro.market.workload import generate_market_workload


def build_market(seed: int, mode: str, quota_scale: float) -> TokenMarket:
    tenants, jobs = generate_market_workload(
        tenants=3,
        jobs_per_tenant=6,
        capacity=60,
        quota_scale=quota_scale,
        horizon_ticks=12,
        seed=seed,
    )
    return TokenMarket(
        tenants, jobs, MarketConfig(capacity=60, mode=mode)
    )


market_params = {
    "seed": st.integers(0, 60),
    "mode": st.sampled_from(["pooled", "split"]),
    "quota_scale": st.sampled_from([0.5, 0.8, 1.0]),
}


class TestMarketTickInvariants:
    @given(**market_params)
    @settings(max_examples=25, deadline=None)
    def test_tokens_conserved_every_tick(self, seed, mode, quota_scale):
        market = build_market(seed, mode, quota_scale)
        while not market.done:
            sample = market.step()
            assert sample.guaranteed + sample.spare <= market.config.capacity
            assert sample.granted == sample.guaranteed + sample.spare

    @given(**market_params)
    @settings(max_examples=25, deadline=None)
    def test_no_tenant_exceeds_quota(self, seed, mode, quota_scale):
        market = build_market(seed, mode, quota_scale)
        while not market.done:
            market.step()
            for tenant in market.tenants.values():
                assert tenant.guaranteed_in_use <= tenant.quota

    @given(**market_params)
    @settings(max_examples=25, deadline=None)
    def test_guarantees_never_displaced_by_spare(
        self, seed, mode, quota_scale
    ):
        """Every live job's grant covers min(guarantee, demand): however
        hard other jobs bid for spare tokens, the admission reservation
        holds."""
        market = build_market(seed, mode, quota_scale)
        dt = market.config.tick_seconds
        while not market.done:
            live_before = {
                j.name: (j.guarantee, j.demand(dt))
                for j in market.live_jobs
            }
            market.step()
            for job in market.live_jobs:
                if job.name not in live_before:
                    continue
                guarantee, demand = live_before[job.name]
                assert job.allocation >= min(guarantee, demand)

    @given(**market_params)
    @settings(max_examples=20, deadline=None)
    def test_every_admitted_job_terminates(self, seed, mode, quota_scale):
        market = build_market(seed, mode, quota_scale)
        result = market.run()
        for tenant_stats in result.tenants:
            assert tenant_stats["unfinished"] == 0
            assert (
                tenant_stats["completed"] + tenant_stats["rejected"]
                == tenant_stats["submitted"]
            )
            assert tenant_stats["completed"] >= tenant_stats["admitted"] - 0
        # No live or queued jobs remain anywhere.
        assert all(not t.live for t in market.tenants.values())
        assert all(not t.queue for t in market.tenants.values())


@st.composite
def bid_schedules(draw):
    """A list of jobs with non-increasing marginal-value schedules."""
    n = draw(st.integers(1, 6))
    bids = []
    for i in range(n):
        raw = draw(st.lists(
            st.floats(0.0, 100.0, allow_nan=False), min_size=0, max_size=6
        ))
        marginals = tuple(sorted(raw, reverse=True))
        bids.append(Bid(job=f"j{i}", tenant="t", marginals=marginals))
    return bids


class TestClearingPriceMonotonicity:
    @given(bids=bid_schedules(), supply=st.integers(0, 20))
    @settings(max_examples=80, deadline=None)
    def test_price_monotone_in_added_demand(self, bids, supply):
        """Adding one more bidder never lowers the clearing price."""
        base = MarketArbiter().clear(bids, supply)
        extra = Bid(job="zzz-extra", tenant="t", marginals=(50.0, 25.0))
        more = MarketArbiter().clear(list(bids) + [extra], supply)
        assert more.demand >= base.demand
        assert more.price >= base.price - 1e-12

    @given(bids=bid_schedules(), supply=st.integers(0, 20))
    @settings(max_examples=80, deadline=None)
    def test_price_monotone_in_scaled_values(self, bids, supply):
        """Scaling every marginal up never lowers the clearing price."""
        base = MarketArbiter().clear(bids, supply)
        scaled = [
            Bid(
                job=b.job, tenant=b.tenant,
                marginals=tuple(2.0 * v for v in b.marginals),
            )
            for b in bids
        ]
        more = MarketArbiter().clear(scaled, supply)
        assert more.price >= base.price - 1e-12

    @given(bids=bid_schedules(), supply=st.integers(0, 20))
    @settings(max_examples=80, deadline=None)
    def test_grants_are_schedule_prefixes_within_supply(self, bids, supply):
        clearing = MarketArbiter().clear(bids, supply)
        assert clearing.granted_total <= supply
        wanted = {b.job: b.tokens_wanted for b in bids}
        for job, granted in clearing.grants.items():
            assert 0 < granted <= wanted[job]


class TestAdmissionFeasibility:
    @given(
        work=st.floats(1.0, 1e5, allow_nan=False),
        width=st.integers(1, 64),
        deadline=st.floats(1.0, 1e5, allow_nan=False),
    )
    @settings(max_examples=60, deadline=None)
    def test_minimum_guarantee_meets_deadline_with_slack(
        self, work, width, deadline
    ):
        from repro.market.admission import MarketAdmission

        spec = JobSpec(
            name="j", tenant="t", work=work, width=width,
            deadline_seconds=deadline,
        )
        admission = MarketAdmission(slack=1.2)
        minimum = admission.minimum_guarantee(spec, now=0.0)
        if minimum is None:
            # Only infeasible cases are declined: even the full width
            # cannot finish the slack-inflated work in time.
            assert math.ceil(1.2 * work / deadline) > width
        else:
            assert 1 <= minimum <= width
            # The guarantee alone finishes inside the deadline.
            assert 1.2 * work / minimum <= deadline + 1e-6


class TestWorkloadDeterminism:
    @given(seed=st.integers(0, 50))
    @settings(max_examples=20, deadline=None)
    def test_same_seed_same_workload(self, seed):
        a = generate_market_workload(
            tenants=2, jobs_per_tenant=5, capacity=40, seed=seed
        )
        b = generate_market_workload(
            tenants=2, jobs_per_tenant=5, capacity=40, seed=seed
        )
        assert a[1] == b[1]
        assert [t.name for t in a[0]] == [t.name for t in b[0]]
        assert [t.quota for t in a[0]] == [t.quota for t in b[0]]


class TestQuotaValidation:
    def test_quota_sum_over_capacity_rejected(self):
        from repro.market.tenant import MarketError
        import pytest

        tenants = [Tenant(name="a", quota=30), Tenant(name="b", quota=31)]
        with pytest.raises(MarketError, match="quotas sum"):
            TokenMarket(tenants, [], MarketConfig(capacity=60))
