"""Smoke tests: every experiment driver runs end-to-end at smoke scale and
produces a well-formed report.  These are the repository's acceptance tests
for the per-table/figure regeneration harness."""

import pytest

from repro.experiments import (
    exp_fig1,
    exp_fig4_5,
    exp_fig6_table3,
    exp_fig7,
    exp_fig8,
    exp_fig9_10,
    exp_fig11,
    exp_fig12_13,
    exp_table1,
    exp_table2,
)
from repro.experiments.reporting import ExperimentReport
from repro.experiments.scenarios import SMOKE


def assert_report(report, experiment_id, min_rows=1):
    assert isinstance(report, ExperimentReport)
    assert report.experiment_id == experiment_id
    assert len(report.rows) >= min_rows or report.extra_sections
    rendered = report.render()
    assert experiment_id in rendered


class TestTable1:
    def test_report(self):
        report = exp_table1.run(SMOKE)
        assert_report(report, "table1")
        # CoV values are positive and finite.
        for row in report.rows:
            assert all(0 <= v < 10 for v in row[1:])


class TestFig1:
    def test_report(self):
        report = exp_fig1.run(SMOKE)
        assert_report(report, "fig1", min_rows=4)
        series = {row[0]: row[1:] for row in report.rows}
        gaps = series["gap between dependent jobs [min]"]
        assert all(b >= a for a, b in zip(gaps, gaps[1:])), "CDF must be sorted"


class TestTable2:
    def test_report(self):
        report = exp_table2.run(SMOKE, include_dags=True)
        assert_report(report, "table2", min_rows=7)
        # Structural rows match the published values exactly at full
        # vertex scale; stage/barrier counts match at every scale.
        by_stat = {row[0]: row[1:] for row in report.rows}
        stages_row = by_stat["number of stages"]
        assert stages_row[0] == "23 (23)"  # job A

    def test_dags_optional(self):
        report = exp_table2.run(SMOKE, include_dags=False)
        assert not any("tasks=" in s for s in report.extra_sections)


class TestFig4And5:
    @pytest.fixture(scope="class")
    def results(self):
        return exp_fig4_5.run_policy_comparison(SMOKE, seed=0)

    def test_suite_size(self, results):
        # jobs x 2 deadlines x 4 policies x reps.
        expected = len(SMOKE.jobs) * 2 * 4 * SMOKE.reps
        assert len(results) == expected

    def test_fig4_report(self, results):
        report = exp_fig4_5.fig4_report(results)
        assert_report(report, "fig4", min_rows=4)
        by_policy = {row[0]: row for row in report.rows}
        # Max-allocation always has the largest cluster impact.
        impacts = {name: row[3] for name, row in by_policy.items()}
        assert impacts["max-allocation"] == max(impacts.values())

    def test_fig5_report(self, results):
        report = exp_fig4_5.fig5_report(results)
        assert_report(report, "fig5", min_rows=4)
        for row in report.rows:
            values = row[1:]
            assert all(b >= a - 1e-9 for a, b in zip(values, values[1:]))


class TestFig6Table3:
    def test_reports(self):
        fig6, table3 = exp_fig6_table3.run(SMOKE, seed=0)
        assert_report(fig6, "fig6+table3")
        assert_report(table3, "table3", min_rows=5)
        # Three case-study sections plus the pooled scorecard section.
        assert len(fig6.extra_sections) == 4
        assert any("scorecard" in s.lower() for s in fig6.extra_sections)
        # Table 3's work column: reruns need more work than training.
        work_row = next(r for r in table3.rows if "total work" in r[0])
        assert work_row[2] > work_row[1]


class TestFig7:
    def test_report(self):
        report = exp_fig7.run(SMOKE, seed=0)
        assert_report(report, "fig7", min_rows=3)
        by_change = {row[0]: row for row in report.rows}
        # Cutting a deadline never *releases* resources; extending never
        # acquires them.  (At smoke scale the tiny jobs may already sit at
        # the allocation floor, so the change can be zero.)
        assert by_change["halved"][3] >= 0
        assert by_change["doubled"][3] <= 0
        assert by_change["tripled"][3] <= by_change["doubled"][3]
        # Every new deadline is still met at smoke scale.
        assert all(row[2] == 100.0 for row in report.rows)


class TestFig8:
    def test_report(self):
        report = exp_fig8.run(SMOKE, seed=0)
        assert_report(report, "fig8", min_rows=2)
        assert report.rows[-1][0] == "average"
        for row in report.rows:
            assert row[1] >= 0 and row[2] >= 0


class TestFig9And10:
    def test_reports(self):
        fig9, fig10 = exp_fig9_10.run(SMOKE, seed=0, allocation=25)
        assert_report(fig9, "fig9")
        assert_report(fig10, "fig10", min_rows=6)
        names = [row[0] for row in fig10.rows]
        assert "totalworkWithQ" in names and "minstage-inf" in names
        for row in fig10.rows:
            assert 0 <= row[1] <= 100 and 0 <= row[2] <= 100


class TestFig11:
    def test_report(self):
        report = exp_fig11.run(SMOKE, seed=0)
        assert_report(report, "fig11", min_rows=7)
        labels = [row[0] for row in report.rows]
        assert "baseline" in labels and "CP progress" in labels


class TestFig12And13:
    def test_fig12(self):
        report = exp_fig12_13.run_fig12(SMOKE, seed=0)
        assert_report(report, "fig12", min_rows=5)
        slacks = [row[0] for row in report.rows]
        assert slacks == sorted(slacks)

    def test_fig13(self):
        report = exp_fig12_13.run_fig13(SMOKE, seed=0)
        assert_report(report, "fig13", min_rows=5)
