"""The batched event-dispatch fast path: APIs, queue invariants, and the
byte-identity contract of the job manager's wave starts.

Three layers of evidence that the throughput refactor changed no results:

* API tests for the new fire-and-forget (``call_at`` / ``call_after``) and
  batched (``schedule_batch``) scheduling entry points.
* Hypothesis invariants on the tuple-queue itself: FIFO tie order across
  every scheduling API, cancellation never fires nor reorders survivors,
  and heap compaction never drops a live event.
* Byte-identical run digests (trace JSONL and task records) between the
  batched wave path and the pre-batching scalar start loop, on paired
  seeds, and across ``parallel_map`` worker counts 1 and 2.
"""

import hashlib
import io
import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import parallel
from repro.cluster import Cluster, ClusterConfig
from repro.jobs.dag import Edge, EdgeType, JobGraph, Stage
from repro.jobs.profiles import JobProfile, StageProfile
from repro.runtime.jobmanager import JobManager, run_to_completion
from repro.simkit.distributions import LogNormal
from repro.simkit.events import SimulationError, Simulator
from repro.simkit.random import RngRegistry
from repro.telemetry import export as telemetry_export
from repro.telemetry import trace as _trace


# ----------------------------------------------------------------------
# Fire-and-forget scheduling APIs.
# ----------------------------------------------------------------------


class TestCallAfterCallAt:
    def test_call_after_dispatches_in_time_order(self):
        sim = Simulator()
        fired = []
        sim.call_after(3.0, fired.append, "c")
        sim.call_after(1.0, fired.append, "a")
        sim.call_after(2.0, fired.append, "b")
        sim.run()
        assert fired == ["a", "b", "c"]
        assert sim.now == 3.0

    def test_call_at_absolute_time(self):
        sim = Simulator(start_time=100.0)
        seen = []
        sim.call_at(105.0, lambda: seen.append(sim.now))
        sim.run()
        assert seen == [105.0]

    def test_no_arg_callback_invoked_without_payload(self):
        sim = Simulator()
        calls = []
        sim.call_after(1.0, lambda: calls.append("bare"))
        sim.call_after(2.0, calls.append, "payload")
        sim.run()
        assert calls == ["bare", "payload"]

    def test_payload_may_be_any_object_including_none(self):
        sim = Simulator()
        seen = []
        sim.call_after(1.0, seen.append, None)
        sim.run()
        assert seen == [None]

    def test_call_at_past_raises(self):
        sim = Simulator(start_time=50.0)
        with pytest.raises(SimulationError):
            sim.call_at(49.0, lambda: None)

    def test_call_after_negative_delay_raises(self):
        sim = Simulator()
        with pytest.raises(SimulationError):
            sim.call_after(-1.0, lambda: None)

    def test_counts_as_scheduled_and_dispatched(self):
        sim = Simulator()
        sim.call_after(1.0, lambda: None)
        assert sim.events_scheduled == 1
        sim.run()
        assert sim.events_dispatched == 1


class TestScheduleBatch:
    def test_batch_fires_shared_callback_with_payloads(self):
        sim = Simulator()
        seen = []
        sim.schedule_batch([2.0, 1.0, 3.0], seen.append, ["b", "a", "c"])
        sim.run()
        assert seen == ["a", "b", "c"]

    def test_tie_order_follows_position(self):
        sim = Simulator()
        seen = []
        sim.schedule_batch([5.0] * 4, seen.append, list(range(4)))
        sim.run()
        assert seen == [0, 1, 2, 3]

    def test_without_args_callback_takes_no_payload(self):
        sim = Simulator()
        count = []
        sim.schedule_batch([1.0, 2.0], lambda: count.append(sim.now))
        sim.run()
        assert count == [1.0, 2.0]

    def test_empty_batch_is_a_noop(self):
        sim = Simulator()
        assert sim.schedule_batch([], lambda: None) is None
        assert sim.schedule_batch([], lambda: None, cancelable=True) == []
        assert sim.events_scheduled == 0

    def test_length_mismatch_raises(self):
        sim = Simulator()
        with pytest.raises(SimulationError):
            sim.schedule_batch([1.0, 2.0], lambda x: None, ["only-one"])

    def test_past_time_raises(self):
        sim = Simulator(start_time=10.0)
        with pytest.raises(SimulationError):
            sim.schedule_batch([11.0, 9.0], lambda: None)

    def test_cancelable_batch_returns_handles(self):
        sim = Simulator()
        seen = []
        handles = sim.schedule_batch(
            [1.0, 2.0, 3.0], seen.append, ["a", "b", "c"], cancelable=True
        )
        assert len(handles) == 3
        handles[1].cancel()
        sim.run()
        assert seen == ["a", "c"]

    def test_merge_paths_agree(self):
        """The heappush-loop branch (small batch into a big queue) and the
        extend+heapify branch (batch comparable to the queue) must produce
        the same dispatch order."""

        def build(preload: int, batch: int):
            sim = Simulator()
            order = []
            for i in range(preload):
                sim.call_after(10.0 + i, order.append, f"pre-{i}")
            sim.schedule_batch(
                [5.0 + 0.1 * j for j in range(batch)],
                order.append,
                [f"batch-{j}" for j in range(batch)],
            )
            sim.run()
            return order

        # batch * 4 < queue -> push loop; batch * 4 >= queue -> heapify.
        small = build(preload=50, batch=3)
        large = build(preload=50, batch=40)
        assert small[:3] == ["batch-0", "batch-1", "batch-2"]
        assert large[:40] == [f"batch-{j}" for j in range(40)]

    def test_batch_interleaves_with_scalar_schedules_fifo(self):
        """Equal-time events fire in global scheduling order no matter
        which API queued them."""
        sim = Simulator()
        seen = []
        sim.schedule(7.0, seen.append, "scalar-first")
        sim.schedule_batch([7.0, 7.0], seen.append, ["batch-0", "batch-1"])
        sim.call_at(7.0, seen.append, "call-at-last")
        sim.run()
        assert seen == ["scalar-first", "batch-0", "batch-1", "call-at-last"]


# ----------------------------------------------------------------------
# Hypothesis invariants for the tuple queue.
# ----------------------------------------------------------------------

#: (api, time-bucket) choices: every scheduling API must honor the same
#: global FIFO-among-ties contract.
_APIS = ("schedule", "schedule_at", "call_after", "call_at", "batch")


def _schedule_one(sim, api, t, payload, sink):
    if api == "schedule":
        return sim.schedule(t, sink.append, payload)
    if api == "schedule_at":
        return sim.schedule_at(sim.now + t, sink.append, payload)
    if api == "call_after":
        sim.call_after(t, sink.append, payload)
    elif api == "call_at":
        sim.call_at(sim.now + t, sink.append, payload)
    else:
        sim.schedule_batch([sim.now + t], sink.append, [payload])
    return None


class TestQueueInvariants:
    @given(
        plan=st.lists(
            st.tuples(
                st.sampled_from(_APIS),
                st.integers(min_value=0, max_value=3),
            ),
            min_size=1,
            max_size=60,
        )
    )
    @settings(max_examples=60)
    def test_fifo_among_ties_across_all_apis(self, plan):
        """Events at equal times fire in scheduling order regardless of
        which API queued them; across times, dispatch is time-sorted."""
        sim = Simulator()
        fired = []
        for i, (api, bucket) in enumerate(plan):
            _schedule_one(sim, api, float(bucket), (bucket, i), fired)
        sim.run()
        assert fired == sorted(fired)
        assert len(fired) == len(plan)

    @given(
        plan=st.lists(
            st.tuples(
                st.sampled_from(("schedule", "schedule_at", "batch")),
                st.integers(min_value=0, max_value=3),
                st.booleans(),
            ),
            min_size=1,
            max_size=60,
        )
    )
    @settings(max_examples=60)
    def test_cancellation_never_fires_nor_reorders(self, plan):
        """Cancelled events never fire; survivors keep exact global order;
        the live-event accounting stays consistent."""
        sim = Simulator()
        fired = []
        expected = []
        for i, (api, bucket, cancel) in enumerate(plan):
            t = float(bucket)
            payload = (bucket, i)
            if api == "schedule":
                handle = sim.schedule(t, fired.append, payload)
            elif api == "schedule_at":
                handle = sim.schedule_at(sim.now + t, fired.append, payload)
            else:
                handle = sim.schedule_batch(
                    [sim.now + t], fired.append, [payload], cancelable=True
                )[0]
            if cancel:
                handle.cancel()
            else:
                expected.append(payload)
        sim.run()
        assert fired == sorted(expected)
        assert sim.events_dispatched == len(expected)
        assert sim.pending_count == 0

    @given(
        live_buckets=st.lists(
            st.integers(min_value=0, max_value=5), min_size=1, max_size=40
        ),
        victims=st.integers(min_value=150, max_value=400),
    )
    @settings(max_examples=25)
    def test_compaction_never_drops_live_events(self, live_buckets, victims):
        """Mass cancellation forces heap rebuilds; every live event still
        fires exactly once, in order."""
        sim = Simulator()
        fired = []
        for i, bucket in enumerate(live_buckets):
            sim.call_after(float(bucket), fired.append, (bucket, i))
        handles = sim.schedule_batch(
            [1000.0 + i for i in range(victims)],
            lambda: None,
            cancelable=True,
        )
        for handle in handles:
            handle.cancel()
        assert sim.compactions > 0  # the storm actually hit the compactor
        sim.run(until=500.0)
        assert fired == sorted(fired)
        assert len(fired) == len(live_buckets)

    @given(cancel_twice=st.booleans())
    @settings(max_examples=10)
    def test_cancel_is_idempotent_and_post_fire_safe(self, cancel_twice):
        sim = Simulator()
        fired = []
        keep = sim.schedule(1.0, fired.append, "live")
        sim.run()
        keep.cancel()  # after fire: documented safe no-op
        if cancel_twice:
            keep.cancel()
        sim.call_after(1.0, fired.append, "after")
        sim.run()
        assert fired == ["live", "after"]


# ----------------------------------------------------------------------
# Byte-identity of the job manager's batched wave starts.
# ----------------------------------------------------------------------

#: A small but *stochastic* substrate: background demand, contention,
#: machine failures, lognormal runtimes — every code path whose RNG draw
#: order the wave batching must preserve.
_CONFIG = ClusterConfig(
    num_machines=20,
    slots_per_machine=4,
    background_guaranteed=30,
    background_mean_demand=50.0,
    background_min_demand=20,
    background_max_demand=70,
    machine_mtbf_seconds=30_000.0,
    spare_soaker_weight=40.0,
)


def _stochastic_job():
    graph = JobGraph(
        "waves",
        [Stage("map", 60), Stage("reduce", 10)],
        [Edge("map", "reduce", EdgeType.ALL_TO_ALL)],
    )
    profile = JobProfile(
        graph,
        {
            "map": StageProfile(
                "map",
                runtime=LogNormal.from_median_p90(20.0, 45.0),
                failure_prob=0.05,
            ),
            "reduce": StageProfile(
                "reduce", runtime=LogNormal.from_median_p90(12.0, 20.0)
            ),
        },
    )
    return graph, profile


class _ScalarStartManager(JobManager):
    """The pre-batching start path, verbatim: one ``_start_task`` call per
    ready task.  Used as the reference the batched wave path must match
    byte-for-byte."""

    def _start_ready_tasks(self):
        grant = self.consumer.grant
        cap = self._grant_cap(grant)
        started = False
        while self._ready and len(self._running) < cap:
            self._start_task(self._ready.popleft(), grant)
            started = True
        if started:
            self.trace.mark_running(self.sim.now, len(self._running))


def _traced_run(manager_cls, seed, **manager_kwargs):
    """Run the stochastic job under a full trace capture; return the trace
    JSONL bytes and the JSON-serialized task records."""
    with _trace.capture(capacity=1 << 20) as rec:
        sim = Simulator()
        cluster = Cluster(sim, _CONFIG, rng=RngRegistry(seed))
        graph, profile = _stochastic_job()
        manager = manager_cls(
            cluster, graph, profile, initial_allocation=20, **manager_kwargs
        )
        run_trace = run_to_completion(manager)
        events = rec.events()
    buf = io.StringIO()
    telemetry_export.write_jsonl(events, buf)
    records = json.dumps(
        [
            (r.stage, r.index, r.attempt, r.machine, r.start_time,
             r.end_time, r.outcome)
            for r in run_trace.records
        ],
        sort_keys=True,
    ).encode("utf-8")
    return buf.getvalue().encode("utf-8"), records


class TestWaveBatchingByteIdentity:
    @pytest.mark.parametrize("seed", [3, 11])
    def test_batched_waves_match_scalar_starts(self, seed):
        """The tentpole contract: batching the wave's event-queue mechanics
        changes nothing observable — trace bytes and task records are
        identical to the scalar start loop, on paired seeds."""
        batched_jsonl, batched_records = _traced_run(JobManager, seed)
        scalar_jsonl, scalar_records = _traced_run(_ScalarStartManager, seed)
        assert (
            hashlib.sha256(batched_jsonl).hexdigest()
            == hashlib.sha256(scalar_jsonl).hexdigest()
        )
        assert batched_jsonl == scalar_jsonl
        assert batched_records == scalar_records
        # The comparison is not vacuous: the run actually started waves.
        assert b"task.start" in batched_jsonl

    def test_repeated_run_is_byte_identical(self):
        first = _traced_run(JobManager, seed=3)
        second = _traced_run(JobManager, seed=3)
        assert first == second

    def test_different_seeds_differ(self):
        """Guard against the digest comparing constants."""
        a, _ = _traced_run(JobManager, seed=3)
        b, _ = _traced_run(JobManager, seed=11)
        assert a != b


def _digest_for_seed(seed: int) -> str:
    """Top-level (picklable) worker: run one traced job, return its digest."""
    jsonl, records = _traced_run(JobManager, seed)
    return hashlib.sha256(jsonl + records).hexdigest()


class TestDigestAcrossWorkerCounts:
    def test_paired_seeds_identical_at_jobs_1_and_2(self):
        """`REPRO_JOBS`-style fan-out must not perturb results: the same
        paired seeds digest identically whether the runs execute serially
        or across two worker processes."""
        seeds = [3, 11]
        serial = parallel.parallel_map(_digest_for_seed, seeds, jobs=1)
        fanned = parallel.parallel_map(_digest_for_seed, seeds, jobs=2)
        assert serial == fanned


class TestBlockSampling:
    def test_default_is_off_and_matches_scalar_path(self):
        manager_run, _ = _traced_run(JobManager, seed=3)
        explicit_off, _ = _traced_run(JobManager, seed=3, block_sampling=False)
        assert manager_run == explicit_off

    def test_env_var_opts_in(self, monkeypatch):
        graph, profile = _stochastic_job()

        def build():
            cluster = Cluster(Simulator(), _CONFIG, rng=RngRegistry(0))
            return JobManager(cluster, graph, profile)

        monkeypatch.setenv("REPRO_JM_BLOCK_SAMPLING", "1")
        assert build()._block_sampling is True
        monkeypatch.setenv("REPRO_JM_BLOCK_SAMPLING", "0")
        assert build()._block_sampling is False
        monkeypatch.delenv("REPRO_JM_BLOCK_SAMPLING")
        assert build()._block_sampling is False

    def test_block_sampling_is_deterministic(self):
        """Opting in changes the documented draw-order contract but stays
        replayable: same seed, same bytes."""
        first = _traced_run(JobManager, seed=7, block_sampling=True)
        second = _traced_run(JobManager, seed=7, block_sampling=True)
        assert first == second
        # And the job still completes every task exactly once.
        _, records = first
        completed = [
            tuple(r[:2]) for r in json.loads(records) if r[6] == "ok"
        ]
        assert len(set(completed)) == 70
