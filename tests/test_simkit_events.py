"""Unit tests for the discrete-event engine."""

import pytest

from repro.simkit.events import (
    PeriodicTask,
    SimulationError,
    Simulator,
    format_time,
)


class TestScheduling:
    def test_starts_at_zero(self):
        assert Simulator().now == 0.0

    def test_custom_start_time(self):
        assert Simulator(start_time=12.5).now == 12.5

    def test_schedule_and_run(self):
        sim = Simulator()
        fired = []
        sim.schedule(5.0, lambda: fired.append(sim.now))
        sim.run()
        assert fired == [5.0]

    def test_events_fire_in_time_order(self):
        sim = Simulator()
        order = []
        sim.schedule(3.0, lambda: order.append("c"))
        sim.schedule(1.0, lambda: order.append("a"))
        sim.schedule(2.0, lambda: order.append("b"))
        sim.run()
        assert order == ["a", "b", "c"]

    def test_ties_fire_in_scheduling_order(self):
        sim = Simulator()
        order = []
        for label in "abcde":
            sim.schedule(1.0, lambda l=label: order.append(l))
        sim.run()
        assert order == list("abcde")

    def test_schedule_at_absolute_time(self):
        sim = Simulator()
        fired = []
        sim.schedule_at(7.0, lambda: fired.append(sim.now))
        sim.run()
        assert fired == [7.0]

    def test_cannot_schedule_in_past(self):
        sim = Simulator()
        sim.schedule(1.0, lambda: None)
        sim.run()
        with pytest.raises(SimulationError):
            sim.schedule_at(0.5, lambda: None)

    def test_negative_delay_rejected(self):
        with pytest.raises(SimulationError):
            Simulator().schedule(-1.0, lambda: None)

    def test_events_scheduled_during_dispatch(self):
        sim = Simulator()
        fired = []

        def first():
            fired.append("first")
            sim.schedule(1.0, lambda: fired.append("second"))

        sim.schedule(1.0, first)
        sim.run()
        assert fired == ["first", "second"]
        assert sim.now == 2.0

    def test_zero_delay_event_fires_at_same_time(self):
        sim = Simulator()
        fired = []
        sim.schedule(1.0, lambda: sim.schedule(0.0, lambda: fired.append(sim.now)))
        sim.run()
        assert fired == [1.0]


class TestRunControl:
    def test_run_until_stops_clock_exactly(self):
        sim = Simulator()
        sim.schedule(10.0, lambda: None)
        sim.run(until=4.0)
        assert sim.now == 4.0
        assert sim.pending_count == 1

    def test_run_until_fires_event_at_boundary(self):
        sim = Simulator()
        fired = []
        sim.schedule(4.0, lambda: fired.append(True))
        sim.run(until=4.0)
        assert fired == [True]

    def test_run_until_advances_past_empty_queue(self):
        sim = Simulator()
        sim.run(until=100.0)
        assert sim.now == 100.0

    def test_max_events(self):
        sim = Simulator()
        fired = []
        for i in range(10):
            sim.schedule(float(i + 1), lambda i=i: fired.append(i))
        sim.run(max_events=3)
        assert fired == [0, 1, 2]

    def test_step_returns_false_when_empty(self):
        assert Simulator().step() is False

    def test_step_dispatches_one(self):
        sim = Simulator()
        fired = []
        sim.schedule(1.0, lambda: fired.append(1))
        sim.schedule(2.0, lambda: fired.append(2))
        assert sim.step() is True
        assert fired == [1]

    def test_events_dispatched_counter(self):
        sim = Simulator()
        for _ in range(4):
            sim.schedule(1.0, lambda: None)
        sim.run()
        assert sim.events_dispatched == 4

    def test_peek_time(self):
        sim = Simulator()
        assert sim.peek_time() is None
        sim.schedule(3.0, lambda: None)
        assert sim.peek_time() == 3.0


class TestCancellation:
    def test_cancelled_event_does_not_fire(self):
        sim = Simulator()
        fired = []
        handle = sim.schedule(1.0, lambda: fired.append(True))
        handle.cancel()
        sim.run()
        assert fired == []

    def test_cancel_is_idempotent(self):
        sim = Simulator()
        handle = sim.schedule(1.0, lambda: None)
        handle.cancel()
        handle.cancel()
        sim.run()

    def test_cancelled_events_skipped_by_peek(self):
        sim = Simulator()
        h = sim.schedule(1.0, lambda: None)
        sim.schedule(2.0, lambda: None)
        h.cancel()
        assert sim.peek_time() == 2.0


class TestCancelledHeapCompaction:
    """Cancelled entries must not accumulate in the heap forever (the
    speculation scanner cancels timers constantly on long runs)."""

    def test_pending_count_excludes_cancelled(self):
        sim = Simulator()
        handles = [sim.schedule(float(i + 1), lambda: None) for i in range(10)]
        for h in handles[:4]:
            h.cancel()
        assert sim.pending_count == 6
        assert sim.cancelled_pending == 4

    def test_compaction_shrinks_heap(self):
        sim = Simulator()
        keep = sim.schedule(1000.0, lambda: None)
        handles = [sim.schedule(float(i + 1), lambda: None) for i in range(200)]
        for h in handles:
            h.cancel()
        # 200 cancellations cross both thresholds (>= 64 and > half).
        assert sim.compactions >= 1
        assert sim.heap_size < 50
        assert sim.pending_count == 1
        assert sim.cancelled_pending < 64
        fired = []
        keep.callback = lambda: fired.append(sim.now)
        sim.run()
        assert fired == [1000.0]

    def test_no_compaction_below_threshold(self):
        sim = Simulator()
        for _ in range(100):
            sim.schedule(1.0, lambda: None)
        for h in [sim.schedule(2.0, lambda: None) for _ in range(30)]:
            h.cancel()
        assert sim.compactions == 0
        assert sim.cancelled_pending == 30

    def test_cancel_after_fire_does_not_corrupt_counter(self):
        sim = Simulator()
        handle = sim.schedule(1.0, lambda: None)
        sim.run()
        handle.cancel()  # already fired: must not count as cancelled-pending
        assert sim.cancelled_pending == 0

    def test_drop_on_dispatch_decrements_counter(self):
        sim = Simulator()
        h = sim.schedule(1.0, lambda: None)
        sim.schedule(2.0, lambda: None)
        h.cancel()
        assert sim.cancelled_pending == 1
        sim.run()
        assert sim.cancelled_pending == 0
        assert sim.pending_count == 0

    def test_sustained_cancel_churn_bounds_heap(self):
        # The leak scenario: schedule-and-cancel in a loop.  Without
        # compaction the heap grows to ~n; with it, it stays bounded.
        sim = Simulator()
        for _ in range(5000):
            sim.schedule(10.0, lambda: None).cancel()
        assert sim.heap_size < 200
        assert sim.compactions > 0

    def test_publish_metrics_gauges(self):
        from repro.telemetry.metrics import MetricsRegistry

        sim = Simulator()
        sim.schedule(1.0, lambda: None)
        sim.schedule(3.0, lambda: None)
        # Cancelled behind a live entry: stays in the heap until reached.
        sim.schedule(5.0, lambda: None).cancel()
        sim.run(until=1.5)
        reg = MetricsRegistry()
        sim.publish_metrics(reg)
        snap = {name: m["values"][""] for name, m in reg.snapshot().items()}
        assert snap["repro_simkit_pending_events"] == 1
        assert snap["repro_simkit_cancelled_pending"] == 1
        assert snap["repro_simkit_events_scheduled"] == 3
        assert snap["repro_simkit_events_dispatched"] == 1
        assert snap["repro_simkit_virtual_time_seconds"] == 1.5


class TestPeriodicTask:
    def test_fires_every_period(self):
        sim = Simulator()
        times = []
        sim.schedule_every(10.0, lambda: times.append(sim.now))
        sim.run(until=35.0)
        assert times == [10.0, 20.0, 30.0]

    def test_first_delay_override(self):
        sim = Simulator()
        times = []
        sim.schedule_every(10.0, lambda: times.append(sim.now), first_delay=1.0)
        sim.run(until=22.0)
        assert times == [1.0, 11.0, 21.0]

    def test_until_bound(self):
        sim = Simulator()
        times = []
        task = sim.schedule_every(10.0, lambda: times.append(sim.now), until=25.0)
        sim.run()
        assert times == [10.0, 20.0]
        assert task.stopped

    def test_stop_from_callback(self):
        sim = Simulator()
        times = []
        task = None

        def tick():
            times.append(sim.now)
            if len(times) == 2:
                task.stop()

        task = sim.schedule_every(5.0, tick)
        sim.run(until=100.0)
        assert times == [5.0, 10.0]

    def test_stop_outside_callback(self):
        sim = Simulator()
        times = []
        task = sim.schedule_every(5.0, lambda: times.append(sim.now))
        sim.run(until=12.0)
        task.stop()
        sim.run(until=100.0)
        assert times == [5.0, 10.0]

    def test_invalid_period(self):
        with pytest.raises(SimulationError):
            Simulator().schedule_every(0.0, lambda: None)


class TestFormatTime:
    @pytest.mark.parametrize(
        "seconds,expected",
        [(0, "0:00:00"), (61, "0:01:01"), (3600, "1:00:00"), (3725.4, "1:02:05")],
    )
    def test_rendering(self, seconds, expected):
        assert format_time(seconds) == expected

    def test_negative_clamped(self):
        assert format_time(-5) == "0:00:00"
