"""Unit tests for named RNG streams."""

from repro.simkit.random import RngRegistry, derive_seed


class TestDeriveSeed:
    def test_deterministic(self):
        assert derive_seed(42, "alpha") == derive_seed(42, "alpha")

    def test_name_sensitive(self):
        assert derive_seed(42, "alpha") != derive_seed(42, "beta")

    def test_seed_sensitive(self):
        assert derive_seed(1, "alpha") != derive_seed(2, "alpha")

    def test_non_negative_63_bit(self):
        for seed in (0, 1, 2**40):
            value = derive_seed(seed, "x")
            assert 0 <= value < 2**63


class TestRngRegistry:
    def test_same_name_returns_same_generator(self):
        reg = RngRegistry(1)
        assert reg.stream("a") is reg.stream("a")

    def test_streams_reproducible_across_registries(self):
        a = RngRegistry(7).stream("tasks").random(5)
        b = RngRegistry(7).stream("tasks").random(5)
        assert list(a) == list(b)

    def test_streams_independent_of_each_other(self):
        reg1 = RngRegistry(7)
        reg1.stream("other").random(100)  # consuming one stream...
        value1 = reg1.stream("tasks").random()
        reg2 = RngRegistry(7)
        value2 = reg2.stream("tasks").random()  # ...does not perturb another
        assert value1 == value2

    def test_different_names_differ(self):
        reg = RngRegistry(7)
        assert reg.stream("a").random() != reg.stream("b").random()

    def test_spawn_is_independent(self):
        parent = RngRegistry(3)
        child = parent.spawn("worker")
        assert child.seed != parent.seed
        assert child.stream("x").random() != parent.stream("x").random()

    def test_spawn_deterministic(self):
        a = RngRegistry(3).spawn("worker").stream("x").random()
        b = RngRegistry(3).spawn("worker").stream("x").random()
        assert a == b

    def test_names_listing(self):
        reg = RngRegistry(0)
        reg.stream("b")
        reg.stream("a")
        assert list(reg.names()) == ["a", "b"]
