"""Shared pytest configuration for the test suite."""

from hypothesis import settings

# Property tests exercise whole simulations; wall-clock deadlines make them
# flaky on loaded machines without adding signal.
settings.register_profile("repro", deadline=None, max_examples=50)
settings.load_profile("repro")
