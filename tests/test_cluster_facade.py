"""Unit tests for the Cluster facade: wiring, contention, capacity."""

import pytest

from repro.cluster import Cluster, ClusterConfig
from repro.simkit.events import Simulator
from repro.simkit.random import RngRegistry


def make(config=None, seed=0):
    sim = Simulator()
    return sim, Cluster(sim, config or ClusterConfig(), rng=RngRegistry(seed))


class TestWiring:
    def test_capacity_matches_machines(self):
        _sim, cluster = make(ClusterConfig(num_machines=10, slots_per_machine=4,
                                           background_guaranteed=0,
                                           spare_soaker_weight=0.0))
        assert cluster.pool.capacity == 40

    def test_background_registered_when_configured(self):
        _sim, cluster = make()
        assert cluster.background is not None
        assert cluster.pool.consumer("background").guaranteed == \
            cluster.config.background_guaranteed

    def test_no_background_when_zero(self):
        _sim, cluster = make(ClusterConfig(background_guaranteed=0))
        assert cluster.background is None

    def test_soaker_registered(self):
        _sim, cluster = make()
        assert cluster.spare_soaker is not None

    def test_guaranteed_headroom_reflects_background(self):
        _sim, cluster = make()
        assert cluster.guaranteed_headroom() == (
            cluster.config.total_slots - cluster.config.background_guaranteed
        )

    def test_machine_failure_updates_pool_capacity(self):
        _sim, cluster = make()
        before = cluster.pool.capacity
        cluster.machines.fail(0)
        assert cluster.pool.capacity == before - cluster.config.slots_per_machine

    def test_machine_down_listener_called(self):
        _sim, cluster = make()
        downs = []
        cluster.on_machine_down(downs.append)
        cluster.machines.fail(3)
        cluster.machines.repair(3)  # repairs do not notify down-listeners
        assert downs == [3]


class TestContention:
    def config(self, coeff=1.0, threshold=1.0):
        return ClusterConfig(
            background_mean_demand=None,  # demand == guarantee (300/400)
            contention_coeff=coeff,
            contention_threshold=threshold,
        )

    def test_no_contention_below_threshold(self):
        _sim, cluster = make(self.config())
        # demand ~300 of 400 -> load 0.75 < 1.0 threshold.
        assert cluster.contention_factor() == 1.0

    def test_contention_grows_with_oversubscription(self):
        sim, cluster = make(ClusterConfig(
            background_mean_demand=500.0,
            background_min_demand=500,
            background_max_demand=500,
            background_volatility=0.0,
            contention_coeff=1.0,
        ))
        # load 500/400 = 1.25 -> factor 1.25.
        assert cluster.contention_factor() == pytest.approx(1.25)

    def test_disabled_with_zero_coeff(self):
        _sim, cluster = make(ClusterConfig(
            background_mean_demand=500.0,
            background_min_demand=500,
            background_max_demand=500,
            contention_coeff=0.0,
        ))
        assert cluster.contention_factor() == 1.0

    def test_no_background_means_no_contention(self):
        _sim, cluster = make(ClusterConfig(background_guaranteed=0))
        assert cluster.contention_factor() == 1.0

    def test_contention_slows_tasks(self):
        """End-to-end: the same job takes contention-factor x longer."""
        from repro.jobs.dag import JobGraph, Stage
        from repro.jobs.profiles import JobProfile, StageProfile
        from repro.runtime.jobmanager import JobManager, run_to_completion
        from repro.simkit.distributions import Constant

        graph = JobGraph("j", [Stage("s", 4)], [])
        profile = JobProfile(
            graph, {"s": StageProfile("s", runtime=Constant(10.0))}
        )
        durations = {}
        for coeff in (0.0, 2.0):
            sim = Simulator()
            cluster = Cluster(
                sim,
                ClusterConfig(
                    background_guaranteed=300,
                    background_mean_demand=500.0,
                    background_min_demand=500,
                    background_max_demand=500,
                    background_volatility=0.0,
                    spare_soaker_weight=0.0,
                    machine_mtbf_seconds=None,
                    contention_coeff=coeff,
                ),
                rng=RngRegistry(0),
            )
            manager = JobManager(cluster, graph, profile, initial_allocation=4)
            durations[coeff] = run_to_completion(manager).duration
        # load 1.25 -> factor 1 + 2*0.25 = 1.5.
        assert durations[2.0] == pytest.approx(durations[0.0] * 1.5)
