"""Unit tests for the inter-job pipeline trace generator (Fig. 1)."""

import pytest

from repro.jobs.pipelines import PipelineJob, PipelineTrace, generate_pipeline_trace


def hand_trace():
    """feed(0) -> a(1) -> b(2); feed(0) -> c(3) in another group."""
    trace = PipelineTrace()
    trace.jobs = [
        PipelineJob(0, "g0", start_time=0.0, end_time=600.0),
        PipelineJob(1, "g0", start_time=1200.0, end_time=1800.0, inputs=(0,)),
        PipelineJob(2, "g0", start_time=2400.0, end_time=3000.0, inputs=(1,)),
        PipelineJob(3, "g1", start_time=900.0, end_time=1500.0, inputs=(0,)),
    ]
    return trace


class TestStats:
    def test_dependents(self):
        deps = hand_trace().dependents()
        assert deps[0] == [1, 3]
        assert deps[1] == [2]
        assert deps[2] == []

    def test_gaps_minutes(self):
        gaps = sorted(hand_trace().dependency_gaps_minutes())
        # edges: 0->1 gap 600s, 0->3 gap 300s, 1->2 gap 600s.
        assert gaps == [5.0, 10.0, 10.0]

    def test_indirect_dependents(self):
        indirect = hand_trace().indirect_dependents()
        assert indirect[0] == 3
        assert indirect[1] == 1
        assert 2 not in indirect  # no dependents -> excluded

    def test_dependent_groups(self):
        groups = hand_trace().dependent_groups()
        assert groups[0] == 2  # g0 and g1 downstream
        assert groups[1] == 1

    def test_chain_lengths(self):
        assert hand_trace().chain_lengths() == [3]

    def test_job_validation(self):
        with pytest.raises(ValueError):
            PipelineJob(0, "g", start_time=10.0, end_time=5.0)


class TestGenerator:
    def test_exact_job_count(self):
        trace = generate_pipeline_trace(seed=0, num_jobs=500)
        assert len(trace) == 500

    def test_deterministic(self):
        a = generate_pipeline_trace(seed=4, num_jobs=300)
        b = generate_pipeline_trace(seed=4, num_jobs=300)
        assert [j.start_time for j in a.jobs] == [j.start_time for j in b.jobs]

    def test_inputs_always_earlier_jobs(self):
        trace = generate_pipeline_trace(seed=1, num_jobs=400)
        for job in trace.jobs:
            for parent in job.inputs:
                assert parent < job.job_id

    def test_consumers_start_after_inputs_finish(self):
        trace = generate_pipeline_trace(seed=1, num_jobs=400)
        by_id = {j.job_id: j for j in trace.jobs}
        for job in trace.jobs:
            for parent in job.inputs:
                assert job.start_time >= by_id[parent].end_time

    def test_gap_median_near_target(self):
        trace = generate_pipeline_trace(seed=2, num_jobs=2000, gap_median_minutes=10.0)
        gaps = sorted(trace.dependency_gaps_minutes())
        median = gaps[len(gaps) // 2]
        assert 5.0 <= median <= 20.0

    def test_heavy_tailed_fanout(self):
        """Fig. 1 shape: some jobs accumulate far more dependents than the
        median job."""
        trace = generate_pipeline_trace(seed=3, num_jobs=2000)
        indirect = sorted(trace.indirect_dependents().values())
        median = indirect[len(indirect) // 2]
        assert max(indirect) > 10 * max(median, 1)

    def test_cross_group_chains_exist(self):
        trace = generate_pipeline_trace(seed=5, num_jobs=1500)
        groups = trace.dependent_groups()
        assert max(groups.values()) >= 3

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            generate_pipeline_trace(num_jobs=1)
        with pytest.raises(ValueError):
            generate_pipeline_trace(feed_fraction=0.0)
