"""Unit tests for Jockey's offline job simulator."""

import numpy as np
import pytest

from repro.core.progress import totalwork
from repro.core.simulator import (
    SimulatorError,
    simulate_durations,
    simulate_job,
    simulate_relative_spans,
)
from repro.jobs.dag import Edge, EdgeType, JobGraph, Stage
from repro.jobs.profiles import JobProfile, StageProfile
from repro.simkit.distributions import Constant


def deterministic_profile(num_maps=6, num_reduces=2, map_time=10.0,
                          reduce_time=5.0, failure_prob=0.0):
    graph = JobGraph(
        "tiny",
        [Stage("map", num_maps), Stage("reduce", num_reduces)],
        [Edge("map", "reduce", EdgeType.ALL_TO_ALL)],
    )
    return JobProfile(
        graph,
        {
            "map": StageProfile("map", runtime=Constant(map_time),
                                failure_prob=failure_prob),
            "reduce": StageProfile("reduce", runtime=Constant(reduce_time)),
        },
    )


@pytest.fixture
def rng():
    return np.random.default_rng(5)


class TestDeterministicJobs:
    def test_full_parallelism_duration(self, rng):
        run = simulate_job(deterministic_profile(), 100, rng)
        assert run.duration == pytest.approx(15.0)

    def test_serial_duration(self, rng):
        run = simulate_job(deterministic_profile(), 1, rng)
        assert run.duration == pytest.approx(70.0)

    def test_partial_allocation_wave_scheduling(self, rng):
        # 6 maps at 10s with 4 tokens: waves of 4 then 2 -> 20s; + 5s reduce.
        run = simulate_job(deterministic_profile(), 4, rng)
        assert run.duration == pytest.approx(25.0)

    def test_total_cpu_seconds(self, rng):
        run = simulate_job(deterministic_profile(), 3, rng)
        assert run.total_cpu_seconds == pytest.approx(70.0)

    def test_more_tokens_never_slower(self, rng):
        durations = [
            simulate_job(deterministic_profile(), a, rng).duration
            for a in (1, 2, 4, 8, 100)
        ]
        assert durations == sorted(durations, reverse=True)

    def test_invalid_allocation(self, rng):
        with pytest.raises(SimulatorError):
            simulate_job(deterministic_profile(), 0, rng)


class TestFailures:
    def test_failures_retry_until_success(self, rng):
        profile = deterministic_profile(failure_prob=0.4)
        run = simulate_job(profile, 10, rng)
        assert run.failures > 0
        assert run.duration > 15.0  # retries cost time

    def test_failure_work_counted_in_cpu(self, rng):
        profile = deterministic_profile(failure_prob=0.4)
        run = simulate_job(profile, 10, rng)
        assert run.total_cpu_seconds > 70.0


class TestProgressSampling:
    def test_samples_cover_run(self, rng):
        profile = deterministic_profile()
        indicator = totalwork(profile)
        run = simulate_job(profile, 4, rng, indicator=indicator, sample_dt=5.0)
        times = [t for t, _p in run.progress_samples]
        assert times[0] == 0.0
        assert times[-1] == pytest.approx(run.duration)

    def test_progress_monotone_nondecreasing(self, rng):
        profile = deterministic_profile()
        indicator = totalwork(profile)
        run = simulate_job(profile, 4, rng, indicator=indicator, sample_dt=2.0)
        values = [p for _t, p in run.progress_samples]
        assert all(b >= a - 1e-9 for a, b in zip(values, values[1:]))
        assert values[0] == 0.0
        assert values[-1] == pytest.approx(1.0)

    def test_remaining_samples_invert_time(self, rng):
        profile = deterministic_profile()
        indicator = totalwork(profile)
        run = simulate_job(profile, 4, rng, indicator=indicator, sample_dt=5.0)
        for (t, _p), (p2, remaining) in zip(
            run.progress_samples, run.remaining_samples()
        ):
            assert remaining == pytest.approx(run.duration - t)

    def test_no_indicator_no_samples(self, rng):
        run = simulate_job(deterministic_profile(), 4, rng)
        assert run.progress_samples == []


class TestSpans:
    def test_relative_spans_ordered(self, rng):
        spans = simulate_relative_spans(deterministic_profile(), rng)
        assert spans["map"][0] == 0.0
        assert spans["reduce"][0] >= spans["map"][1] - 1e-9
        assert spans["reduce"][1] == pytest.approx(1.0)

    def test_spans_only_when_tracked(self, rng):
        run = simulate_job(deterministic_profile(), 4, rng, track_spans=False)
        assert run.stage_spans == {}


class TestSimulateDurations:
    def test_returns_requested_count(self, rng):
        durations = simulate_durations(deterministic_profile(), 4, rng, reps=5)
        assert len(durations) == 5
        assert all(d == pytest.approx(25.0) for d in durations)


class TestAgainstSubstrate:
    def test_matches_cluster_runtime_for_deterministic_job(self, rng):
        """The offline simulator and the substrate agree exactly when the
        job is deterministic and the cluster is quiet — the model gap in
        the experiments comes only from cluster effects."""
        from repro.runtime.jobmanager import JobManager, run_to_completion
        from repro.simkit.events import Simulator
        from tests.test_runtime_jobmanager import quiet_cluster

        profile = deterministic_profile()
        offline = simulate_job(profile, 4, rng).duration

        sim = Simulator()
        cluster = quiet_cluster(sim, machines=2, slots=2)  # capacity 4
        manager = JobManager(cluster, profile.graph, profile,
                             initial_allocation=4)
        actual = run_to_completion(manager).duration
        assert offline == pytest.approx(actual)
