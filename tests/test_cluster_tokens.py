"""Unit and property tests for token accounting (guaranteed + spare)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster.tokens import (
    Consumer,
    Grant,
    TokenError,
    TokenPool,
    compute_grants,
)


def consumers(*specs):
    """specs: (name, guaranteed, demand[, weight]) tuples."""
    out = []
    for spec in specs:
        name, guaranteed, demand = spec[:3]
        weight = spec[3] if len(spec) > 3 else None
        c = Consumer(name, guaranteed, weight=weight)
        c.demand = demand
        out.append(c)
    return out


class TestComputeGrants:
    def test_under_demand_gets_demand(self):
        [grant] = compute_grants(100, consumers(("a", 50, 20)))
        assert grant.total == 20
        assert grant.guaranteed_part == 20

    def test_guaranteed_respected_under_contention(self):
        grants = compute_grants(
            100, consumers(("a", 60, 100), ("b", 40, 100))
        )
        assert [g.total for g in grants] == [60, 40]
        assert all(g.spare_part == 0 for g in grants)

    def test_spare_flows_to_unmet_demand(self):
        grants = compute_grants(100, consumers(("a", 60, 20), ("b", 40, 100)))
        assert grants[0].total == 20
        assert grants[1].total == 80
        assert grants[1].guaranteed_part == 40
        assert grants[1].spare_part == 40

    def test_spare_split_by_weight(self):
        grants = compute_grants(
            120,
            consumers(("a", 30, 1000, 30.0), ("b", 30, 1000, 90.0)),
        )
        # 60 spare split 1:3.
        assert grants[0].total == 30 + 15
        assert grants[1].total == 30 + 45

    def test_water_filling_recirculates_surplus(self):
        grants = compute_grants(
            100,
            consumers(("a", 20, 25, 50.0), ("b", 20, 1000, 50.0)),
        )
        # a's unmet demand is tiny (5); the rest of the 60 spare goes to b.
        assert grants[0].total == 25
        assert grants[1].total == 75

    def test_capacity_degradation_shrinks_bases(self):
        grants = compute_grants(50, consumers(("a", 60, 60), ("b", 40, 40)))
        assert sum(g.total for g in grants) == 50
        assert grants[0].total == 30
        assert grants[1].total == 20

    def test_no_consumers(self):
        assert compute_grants(100, []) == []

    def test_zero_capacity(self):
        [grant] = compute_grants(0, consumers(("a", 10, 10)))
        assert grant.total == 0

    def test_grants_never_exceed_demand(self):
        grants = compute_grants(1000, consumers(("a", 10, 3), ("b", 10, 7)))
        assert [g.total for g in grants] == [3, 7]

    @given(
        capacity=st.integers(0, 500),
        specs=st.lists(
            st.tuples(
                st.integers(0, 100),   # guaranteed
                st.integers(0, 400),   # demand
                st.floats(0.5, 100.0), # weight
            ),
            min_size=1,
            max_size=6,
        ),
    )
    @settings(max_examples=200)
    def test_invariants(self, capacity, specs):
        cs = consumers(
            *[(f"c{i}", g, d, w) for i, (g, d, w) in enumerate(specs)]
        )
        grants = compute_grants(capacity, cs)
        total = sum(g.total for g in grants)
        assert total <= capacity
        for c, g in zip(cs, grants):
            assert 0 <= g.total <= c.demand
            assert 0 <= g.guaranteed_part <= g.total
            assert g.guaranteed_part <= max(c.guaranteed, g.total)
        # Work conservation: if any consumer has unmet demand, the pool is
        # fully used (up to sum of demands).
        unmet = any(g.total < c.demand for c, g in zip(cs, grants))
        total_demand = sum(c.demand for c in cs)
        if unmet and total_demand >= capacity:
            assert total == capacity


class TestTokenPool:
    def test_register_and_grant(self):
        pool = TokenPool(100)
        consumer = pool.register(Consumer("a", 40))
        pool.set_demand("a", 50)
        assert consumer.grant.total == 50  # 40 guaranteed + 10 spare

    def test_duplicate_name_rejected(self):
        pool = TokenPool(100)
        pool.register(Consumer("a", 10))
        with pytest.raises(TokenError):
            pool.register(Consumer("a", 10))

    def test_over_reservation_rejected(self):
        pool = TokenPool(100)
        pool.register(Consumer("a", 80))
        with pytest.raises(TokenError):
            pool.register(Consumer("b", 30))

    def test_set_guaranteed_clamps_to_headroom(self):
        pool = TokenPool(100)
        pool.register(Consumer("bg", 70))
        pool.register(Consumer("job", 0))
        applied = pool.set_guaranteed("job", 50)
        assert applied == 30

    def test_unregister_frees_guarantee(self):
        pool = TokenPool(100)
        pool.register(Consumer("a", 80))
        pool.unregister("a")
        pool.register(Consumer("b", 100))

    def test_unknown_consumer(self):
        pool = TokenPool(10)
        with pytest.raises(TokenError):
            pool.set_demand("ghost", 1)
        with pytest.raises(TokenError):
            pool.unregister("ghost")

    def test_grant_callback_fired_on_change(self):
        pool = TokenPool(100)
        grants = []
        pool.register(Consumer("a", 40, on_grant=grants.append))
        pool.set_demand("a", 10)
        pool.set_demand("a", 10)  # no change, no callback
        assert len(grants) == 1
        assert grants[0].total == 10

    def test_capacity_change_triggers_regrant(self):
        pool = TokenPool(100)
        grants = []
        pool.register(Consumer("a", 100, on_grant=grants.append))
        pool.set_demand("a", 100)
        pool.set_capacity(50)
        assert grants[-1].total == 50

    def test_reentrant_recompute_coalesces(self):
        pool = TokenPool(100)
        calls = []

        def on_grant(grant):
            calls.append(grant.total)
            if len(calls) == 1:
                pool.set_demand("a", 20)  # re-entrant change

        pool.register(Consumer("a", 40, on_grant=on_grant))
        pool.set_demand("a", 40)
        assert calls[-1] == 20

    def test_negative_values_rejected(self):
        pool = TokenPool(10)
        pool.register(Consumer("a", 5))
        with pytest.raises(TokenError):
            pool.set_demand("a", -1)
        with pytest.raises(TokenError):
            pool.set_guaranteed("a", -1)
        with pytest.raises(TokenError):
            pool.set_capacity(-5)
        with pytest.raises(TokenError):
            Consumer("x", -1)

    def test_snapshot(self):
        pool = TokenPool(100)
        pool.register(Consumer("a", 10))
        pool.set_demand("a", 5)
        snap = pool.snapshot()
        assert snap["a"].total == 5

    def test_weight_defaults_to_guarantee(self):
        assert Consumer("a", 25).weight == 25.0
        assert Consumer("b", 0).weight == 1.0
        assert Consumer("c", 25, weight=3.0).weight == 3.0
