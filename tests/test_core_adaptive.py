"""Unit tests for online model correction (paper §5.6 extension)."""

import numpy as np
import pytest

from repro.core.adaptive import AdaptiveCpaPredictor, ModelErrorMonitor, make_monitor
from repro.core.control import ControlError
from repro.core.cpa import CpaTable
from repro.core.progress import totalwork
from tests.test_core_simulator import deterministic_profile


class TestModelErrorMonitor:
    def test_starts_neutral(self):
        monitor = ModelErrorMonitor(1000.0)
        assert monitor.inflation == 1.0

    def test_ignores_early_noise(self):
        monitor = ModelErrorMonitor(1000.0, min_progress=0.1)
        monitor.observe(0.02, 500.0)  # ratio 25, but progress too low
        assert monitor.inflation == 1.0
        assert monitor.observations == 0

    def test_converges_to_true_inflation(self):
        monitor = ModelErrorMonitor(1000.0, smoothing=0.5)
        # A 1.5x-heavy run: consumption always 1.5x model-implied work.
        for progress in (0.1, 0.2, 0.4, 0.6, 0.8, 1.0):
            monitor.observe(progress, 1.5 * progress * 1000.0)
        assert monitor.inflation == pytest.approx(1.5, abs=0.05)

    def test_light_run_deflates(self):
        monitor = ModelErrorMonitor(1000.0, smoothing=0.5)
        for progress in (0.2, 0.5, 0.9):
            monitor.observe(progress, 0.85 * progress * 1000.0)
        assert monitor.inflation < 1.0

    def test_clamped(self):
        monitor = ModelErrorMonitor(1000.0, smoothing=1.0, clamp=(0.8, 3.0))
        monitor.observe(0.5, 100.0 * 0.5 * 1000.0)  # ratio 100 -> clamp 3.0
        assert monitor.inflation == 3.0

    def test_smoothing_is_gradual(self):
        monitor = ModelErrorMonitor(1000.0, smoothing=0.25)
        monitor.observe(0.5, 2.0 * 0.5 * 1000.0)
        assert monitor.inflation == pytest.approx(1.25)

    def test_validation(self):
        with pytest.raises(ControlError):
            ModelErrorMonitor(0.0)
        with pytest.raises(ControlError):
            ModelErrorMonitor(10.0, min_progress=0.0)
        with pytest.raises(ControlError):
            ModelErrorMonitor(10.0, clamp=(1.5, 3.0))
        with pytest.raises(ControlError):
            ModelErrorMonitor(10.0, smoothing=0.0)
        monitor = ModelErrorMonitor(10.0)
        with pytest.raises(ControlError):
            monitor.observe(1.5, 10.0)
        with pytest.raises(ControlError):
            monitor.observe(0.5, -1.0)


class TestAdaptiveCpaPredictor:
    @pytest.fixture(scope="class")
    def artifacts(self):
        profile = deterministic_profile()
        indicator = totalwork(profile)
        table = CpaTable.build(
            profile, indicator, np.random.default_rng(0),
            allocations=(1, 2, 4, 8), reps=3, num_bins=20, sample_dt=2.0,
        )
        return profile, indicator, table

    def test_scales_with_inflation(self, artifacts):
        profile, indicator, table = artifacts
        monitor = make_monitor(profile, smoothing=1.0)
        predictor = AdaptiveCpaPredictor(table, indicator, monitor)
        zero = {"map": 0.0, "reduce": 0.0}
        base = predictor.remaining_seconds(zero, 4)
        monitor.observe(0.5, 2.0 * 0.5 * profile.total_work_seconds())
        assert predictor.remaining_seconds(zero, 4) == pytest.approx(2.0 * base)

    def test_neutral_matches_plain_predictor(self, artifacts):
        from repro.core.control import CpaPredictor

        profile, indicator, table = artifacts
        monitor = make_monitor(profile)
        adaptive = AdaptiveCpaPredictor(table, indicator, monitor, percentile=0.6)
        plain = CpaPredictor(table, indicator, percentile=0.6)
        zero = {"map": 0.0, "reduce": 0.0}
        assert adaptive.remaining_seconds(zero, 4) == plain.remaining_seconds(zero, 4)


class TestAdaptivePolicyEndToEnd:
    def test_heavy_run_raises_allocation_earlier(self):
        """On a 1.6x-heavy input, the corrected policy's mid-run allocation
        exceeds plain Jockey's (it sees the divergence sooner)."""
        from repro.experiments.runner import RunConfig, make_policy, run_experiment
        from repro.experiments.scenarios import SMOKE, trained_job

        tj = trained_job("C", seed=0, scale=SMOKE)
        mid_allocs = {}
        for kind in ("jockey", "jockey-online-model"):
            policy = make_policy(kind, tj, tj.short_deadline)
            result = run_experiment(
                tj, policy,
                RunConfig(deadline_seconds=tj.short_deadline, seed=77,
                          runtime_scale=1.6, sample_cluster_day=False),
            )
            series = [a for _t, a in result.allocation_series]
            mid_allocs[kind] = max(series)
        assert mid_allocs["jockey-online-model"] >= mid_allocs["jockey"]

    def test_monitor_observes_during_run(self):
        from repro.experiments.runner import RunConfig, make_policy, run_experiment
        from repro.experiments.scenarios import SMOKE, trained_job

        tj = trained_job("C", seed=0, scale=SMOKE)
        policy = make_policy("jockey-online-model", tj, tj.short_deadline)
        run_experiment(
            tj, policy,
            RunConfig(deadline_seconds=tj.short_deadline, seed=78,
                      runtime_scale=1.5, sample_cluster_day=False),
        )
        assert policy.monitor.observations > 0
        assert policy.monitor.inflation > 1.0
