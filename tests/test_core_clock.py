"""Clock abstraction tests: the control loop's two time substrates."""

import time

import pytest

from repro.core.clock import (
    Clock,
    ClockError,
    ManualClock,
    SimClock,
    WallClock,
    ensure_clock,
)
from repro.core.control import ControlError, JockeyController
from repro.simkit.events import Simulator


class TestSimClock:
    def test_reads_simulator_now(self):
        sim = Simulator()
        clock = SimClock(sim)
        assert clock.now() == 0.0
        sim.schedule(12.5, lambda: None)
        sim.run()
        assert clock.now() == pytest.approx(12.5)

    def test_satisfies_protocol(self):
        assert isinstance(SimClock(Simulator()), Clock)


class TestWallClock:
    def test_starts_near_zero_and_moves_forward(self):
        clock = WallClock(time_scale=1.0)
        first = clock.now()
        assert first >= 0.0
        time.sleep(0.01)
        assert clock.now() > first

    def test_time_scale_compresses(self):
        # 0.01 wall seconds per virtual second: 20 ms of wall time must
        # read as roughly 2 virtual seconds.
        clock = WallClock(time_scale=0.01)
        time.sleep(0.02)
        assert clock.now() == pytest.approx(2.0, abs=1.5)

    def test_conversions_round_trip(self):
        clock = WallClock(time_scale=0.05)
        assert clock.to_wall(100.0) == pytest.approx(5.0)
        assert clock.to_virtual(5.0) == pytest.approx(100.0)
        assert clock.to_virtual(clock.to_wall(7.0)) == pytest.approx(7.0)

    def test_rejects_nonpositive_scale(self):
        with pytest.raises(ClockError):
            WallClock(time_scale=0.0)
        with pytest.raises(ClockError):
            WallClock(time_scale=-1.0)


class TestManualClock:
    def test_advance_and_set(self):
        clock = ManualClock()
        assert clock.now() == 0.0
        clock.advance(5.0)
        assert clock.now() == 5.0
        clock.set(9.0)
        assert clock.now() == 9.0

    def test_only_moves_forward(self):
        clock = ManualClock(start=10.0)
        with pytest.raises(ClockError):
            clock.advance(-1.0)
        with pytest.raises(ClockError):
            clock.set(5.0)


class TestEnsureClock:
    def test_passthrough(self):
        clock = ManualClock()
        assert ensure_clock(clock) is clock

    def test_default_is_wall(self):
        assert isinstance(ensure_clock(None), WallClock)


class TestControllerClock:
    """attach_clock / elapsed / decide_now on the Jockey controller."""

    def _controller(self):
        from repro.core.amdahl import AmdahlModel
        from repro.core.control import ControlConfig
        from repro.core.utility import deadline_utility
        from repro.jobs.dag import JobGraph, Stage
        from repro.jobs.profiles import JobProfile, StageProfile
        from repro.simkit.distributions import Constant

        graph = JobGraph("clocked", [Stage("all", 10)], [])
        profile = JobProfile(
            graph, {"all": StageProfile("all", runtime=Constant(10.0))}
        )
        return JockeyController(
            AmdahlModel(profile),
            deadline_utility(120.0),
            ControlConfig(),
            stage_names=profile.stage_names,
        )

    def test_elapsed_requires_clock(self):
        controller = self._controller()
        with pytest.raises(ControlError):
            controller.elapsed()

    def test_elapsed_tracks_attached_clock(self):
        controller = self._controller()
        clock = ManualClock(start=50.0)
        controller.attach_clock(clock, start=50.0)
        assert controller.elapsed() == 0.0
        clock.advance(30.0)
        assert controller.elapsed() == pytest.approx(30.0)

    def test_decide_now_uses_clock_elapsed(self):
        controller = self._controller()
        clock = ManualClock()
        controller.attach_clock(clock)
        clock.advance(60.0)
        decision = controller.decide_now({"all": 0.5})
        explicit = self._controller().decide({"all": 0.5}, 60.0)
        assert decision.allocation == explicit.allocation

    def test_reset_run_state_clears_epoch(self):
        controller = self._controller()
        clock = ManualClock()
        controller.attach_clock(clock, start=0.0)
        clock.advance(100.0)
        assert controller.elapsed() == pytest.approx(100.0)
        controller.reset_run_state()
        # The next elapsed() re-anchors at the clock's current reading.
        assert controller.elapsed() == pytest.approx(0.0)
