"""Tests for the content-addressed on-disk model cache.

The contract: a cache hit answers every query *identically* to the build
it replaced, a corrupted entry degrades to a rebuild (never a crash), and
a warm cache means model construction runs zero simulations.
"""

import json

import numpy as np
import pytest

from repro import cache as model_cache
from repro.core.cpa import CpaTable
from repro.core.progress import totalwork

from tests.test_parallel import stochastic_profile


@pytest.fixture
def cache_dir(tmp_path, monkeypatch):
    monkeypatch.setenv(model_cache.CACHE_DIR_ENV, str(tmp_path))
    monkeypatch.delenv(model_cache.CACHE_TOGGLE_ENV, raising=False)
    return tmp_path


BUILD_KWARGS = dict(
    allocations=(2, 4, 8), reps=3, num_bins=20, sample_dt=2.0
)


def build_via_cache(profile, seed=42, **overrides):
    kwargs = {**BUILD_KWARGS, **overrides}
    return model_cache.get_or_build_table(
        profile,
        totalwork(profile),
        indicator_kind="totalwork",
        seed=seed,
        **kwargs,
    )


class TestKeying:
    def test_key_is_stable(self):
        profile = stochastic_profile()
        args = dict(
            profile=profile, indicator_kind="totalwork", allocations=(2, 4),
            reps=3, num_bins=20, sample_dt=2.0, seed=1,
        )
        assert model_cache.table_key(**args) == model_cache.table_key(**args)

    @pytest.mark.parametrize(
        "change",
        [
            {"indicator_kind": "fraction"},
            {"allocations": (2, 4, 8)},
            {"reps": 4},
            {"num_bins": 25},
            {"sample_dt": 3.0},
            {"seed": 2},
        ],
    )
    def test_any_input_change_changes_key(self, change):
        profile = stochastic_profile()
        base = dict(
            profile=profile, indicator_kind="totalwork", allocations=(2, 4),
            reps=3, num_bins=20, sample_dt=2.0, seed=1,
        )
        assert model_cache.table_key(**base) != model_cache.table_key(
            **{**base, **change}
        )

    def test_profile_fingerprint_sees_content(self):
        p1 = stochastic_profile()
        p2 = stochastic_profile()
        assert model_cache.profile_fingerprint(p1) == (
            model_cache.profile_fingerprint(p2)
        )


class TestRoundTrip:
    def test_hit_answers_identically(self, cache_dir):
        profile = stochastic_profile()
        built = build_via_cache(profile)
        cached = build_via_cache(profile)
        for q in (0.1, 0.5, 0.6, 0.9):
            for progress in (0.0, 0.25, 0.5, 0.99):
                for a in (2, 3, 4, 8, 100):
                    assert built.remaining(progress, a, q=q) == (
                        cached.remaining(progress, a, q=q)
                    )
        for threshold in (0.0, 5.0, 50.0):
            assert built.exceedance(0.3, 4, threshold) == (
                cached.exceedance(0.3, 4, threshold)
            )

    def test_warm_cache_runs_zero_simulations(self, cache_dir, monkeypatch):
        profile = stochastic_profile()
        build_via_cache(profile)

        def boom(*_args, **_kwargs):
            raise AssertionError("simulate_job ran on a warm cache")

        import repro.core.cpa as cpa_mod

        monkeypatch.setattr(cpa_mod, "simulate_job", boom)
        table = build_via_cache(profile)
        assert isinstance(table, CpaTable)

    def test_disabled_via_env(self, cache_dir, monkeypatch):
        monkeypatch.setenv(model_cache.CACHE_TOGGLE_ENV, "0")
        profile = stochastic_profile()
        build_via_cache(profile)
        store = model_cache.default_cache()
        assert store.entries() == []

    def test_use_cache_false_bypasses(self, cache_dir):
        profile = stochastic_profile()
        model_cache.get_or_build_table(
            profile,
            totalwork(profile),
            indicator_kind="totalwork",
            seed=1,
            use_cache=False,
            **BUILD_KWARGS,
        )
        assert model_cache.default_cache().entries() == []


class TestCorruption:
    def test_corrupt_entry_warns_and_rebuilds(self, cache_dir):
        profile = stochastic_profile()
        built = build_via_cache(profile)
        (entry,) = model_cache.default_cache().entries()
        entry.write_text("{ not json", encoding="utf-8")
        with pytest.warns(RuntimeWarning, match="corrupt"):
            rebuilt = build_via_cache(profile)
        assert rebuilt.remaining(0.5, 4) == built.remaining(0.5, 4)
        # The bad file was replaced by a fresh store.
        (entry_after,) = model_cache.default_cache().entries()
        json.loads(entry_after.read_text(encoding="utf-8"))

    def test_schema_mismatch_is_a_miss(self, cache_dir):
        profile = stochastic_profile()
        build_via_cache(profile)
        (entry,) = model_cache.default_cache().entries()
        payload = json.loads(entry.read_text(encoding="utf-8"))
        payload["schema"] = -1
        entry.write_text(json.dumps(payload), encoding="utf-8")
        with pytest.warns(RuntimeWarning, match="schema"):
            table = build_via_cache(profile)
        assert isinstance(table, CpaTable)


class TestStats:
    def test_counters_accumulate(self, cache_dir):
        profile = stochastic_profile()
        build_via_cache(profile)   # miss + store
        build_via_cache(profile)   # hit
        stats = model_cache.default_cache().stats()
        assert stats["entries"] == 1
        assert stats["misses"] == 1
        assert stats["stores"] == 1
        assert stats["hits"] == 1
        assert stats["bytes"] > 0

    def test_clear_removes_everything(self, cache_dir):
        profile = stochastic_profile()
        build_via_cache(profile)
        store = model_cache.default_cache()
        assert store.clear() == 1
        assert store.entries() == []
        assert store.stats()["hits"] == 0


class TestCli:
    def test_cache_stats_and_clear(self, cache_dir):
        import io

        from repro.cli import main

        profile = stochastic_profile()
        build_via_cache(profile)
        out = io.StringIO()
        assert main(["cache", "stats"], out=out) == 0
        text = out.getvalue()
        assert "entries: 1" in text
        assert "stores: 1" in text
        out = io.StringIO()
        assert main(["cache", "clear"], out=out) == 0
        assert "removed 1" in out.getvalue()


class TestTrainedJobWarmPath:
    def test_trained_job_zero_simulations_when_warm(
        self, cache_dir, monkeypatch
    ):
        from repro.experiments import scenarios

        scenarios.clear_trained_cache()
        first = scenarios.trained_job("A", seed=5, scale=scenarios.SMOKE)
        scenarios.clear_trained_cache()

        calls = {"n": 0}
        import repro.core.cpa as cpa_mod

        real = cpa_mod.simulate_job

        def counting(*args, **kwargs):
            calls["n"] += 1
            return real(*args, **kwargs)

        monkeypatch.setattr(cpa_mod, "simulate_job", counting)
        second = scenarios.trained_job("A", seed=5, scale=scenarios.SMOKE)
        assert calls["n"] == 0
        assert second.short_deadline == first.short_deadline
        assert np.array_equal(
            second.table._columns[second.table.allocations[0]].bins[0],
            first.table._columns[first.table.allocations[0]].bins[0],
        )
        scenarios.clear_trained_cache()


class TestPrune:
    def _fill(self, n=3):
        """n distinct entries with strictly increasing mtimes."""
        import os
        import time

        store = model_cache.default_cache()
        profile = stochastic_profile()
        paths = []
        for i in range(n):
            build_via_cache(profile, seed=100 + i)
            newest = max(store.entries(), key=lambda p: p.stat().st_mtime_ns)
            # Spread mtimes so LRU order is unambiguous even on coarse
            # filesystem clocks.
            stamp = time.time() - (n - i) * 60
            os.utime(newest, (stamp, stamp))
            paths.append(newest)
        return store, paths

    def test_prune_evicts_oldest_first(self, cache_dir):
        store, paths = self._fill(3)
        keep = paths[-1].stat().st_size
        removed, freed = store.prune(max_bytes=keep)
        assert removed == 2
        assert freed > 0
        assert store.entries() == [paths[-1]]

    def test_prune_is_a_noop_when_under_budget(self, cache_dir):
        store, _paths = self._fill(2)
        removed, freed = store.prune(max_bytes=10**9)
        assert (removed, freed) == (0, 0)
        assert len(store.entries()) == 2

    def test_prune_zero_clears_entries(self, cache_dir):
        store, _paths = self._fill(2)
        removed, _freed = store.prune(max_bytes=0)
        assert removed == 2
        assert store.entries() == []

    def test_prune_counts_in_stats(self, cache_dir):
        store, _paths = self._fill(2)
        store.prune(max_bytes=0)
        assert store.stats()["pruned"] == 2

    def test_negative_budget_rejected(self, cache_dir):
        with pytest.raises(model_cache.CacheError, match="max_bytes"):
            model_cache.default_cache().prune(max_bytes=-1)

    def test_cli_prune_and_stats_total_size(self, cache_dir):
        import io

        from repro.cli import main

        store, _paths = self._fill(2)
        out = io.StringIO()
        assert main(["cache", "stats"], out=out) == 0
        assert "total size:" in out.getvalue()
        out = io.StringIO()
        assert main(["cache", "prune", "--max-bytes", "0"], out=out) == 0
        text = out.getvalue()
        assert "pruned 2 cached model(s)" in text
        assert store.entries() == []
        out = io.StringIO()
        assert main(["cache", "stats"], out=out) == 0
        assert "pruned: 2" in out.getvalue()
