"""Tests for the fleet driver: warm-path efficiency, drift-triggered
refresh, the profile round-trip under injected drift, and spec parsing.

The two acceptance properties pinned here: a calm fleet day performs
**zero** C(p, a) rebuilds (the warm path), and an injected drift makes a
drift-gated mode rebuild while ``stale`` keeps its pinned model.
"""

import dataclasses
import os

import pytest

from repro.chaos.injectors import drifted_profile
from repro.chaos.spec import ProfileDrift
from repro.experiments.scenarios import SMOKE, run_training
from repro.fleet.driver import (
    FleetConfig,
    FleetTemplate,
    fleet_spec_from_dict,
    load_fleet_spec,
    run_fleet,
)
from repro.fleet.store import FleetError, FleetSpecError, ProfileStore
from repro.jobs.profiles import JobProfile
from repro.jobs.workloads import mapreduce_job


@pytest.fixture(scope="module")
def fleet_env(tmp_path_factory):
    """Module-shared cache dir: the paired fleets below retrain from the
    same bootstrap profile, so they share table builds."""
    cache = tmp_path_factory.mktemp("fleet_cache")
    old = os.environ.get("REPRO_CACHE_DIR")
    os.environ["REPRO_CACHE_DIR"] = str(cache)
    try:
        yield cache
    finally:
        if old is None:
            os.environ.pop("REPRO_CACHE_DIR", None)
        else:
            os.environ["REPRO_CACHE_DIR"] = old


@pytest.fixture(scope="module")
def calm_fleet(fleet_env, tmp_path_factory):
    store = tmp_path_factory.mktemp("calm_store")
    config = FleetConfig(
        days=2, model_mode="ewma", scale=SMOKE, seed=0,
        store_root=str(store),
    )
    return run_fleet([FleetTemplate("A")], config), store


DRIFT = ProfileDrift(at=1.0, factor=1.6)


def drifted_config(mode):
    return FleetConfig(
        days=3, model_mode=mode, drift=DRIFT, scale=SMOKE, seed=0,
        deadline_trim=1.0,
    )


@pytest.fixture(scope="module")
def drifted_ewma(fleet_env):
    return run_fleet([FleetTemplate("A")], drifted_config("ewma"))


@pytest.fixture(scope="module")
def drifted_stale(fleet_env):
    return run_fleet([FleetTemplate("A")], drifted_config("stale"))


class TestWarmPath:
    def test_calm_fleet_never_rebuilds(self, calm_fleet):
        result, _store = calm_fleet
        summary = result.summaries[0]
        assert summary.rebuilds == 0
        assert summary.drift_detections == 0
        assert summary.profiling_runs == 1  # the bootstrap only
        assert all(not r.rebuilt for r in result.rows)

    def test_lineage_grows_one_generation_per_day(self, calm_fleet):
        result, store_root = calm_fleet
        store = ProfileStore(store_root)
        # Bootstrap + one generation per simulated day.
        assert len(store.generations("A")) == 1 + result.days
        assert result.summaries[0].final_generation == result.days

    def test_staleness_grows_without_refresh(self, calm_fleet):
        result, _store = calm_fleet
        assert [r.staleness_days for r in result.rows] == [0, 1]

    def test_digest_shape(self, calm_fleet):
        result, _store = calm_fleet
        digest = result.to_digest()
        assert digest["mode"] == "ewma"
        assert len(digest["runs"]) == result.days
        assert digest["summaries"][0]["template"] == "A"


class TestDriftRefresh:
    def test_drift_triggers_rebuild(self, drifted_ewma):
        summary = drifted_ewma.summaries[0]
        assert summary.drift_detections >= 1
        assert summary.rebuilds >= 1

    def test_no_rebuild_before_drift(self, drifted_ewma):
        pre = [r for r in drifted_ewma.rows if r.day < int(DRIFT.at)]
        assert all(not r.rebuilt for r in pre)
        assert all(not r.drift_significant for r in pre)

    def test_detection_lands_on_or_after_drift_day(self, drifted_ewma):
        hits = [r.day for r in drifted_ewma.rows if r.drift_significant]
        assert hits and min(hits) >= int(DRIFT.at)

    def test_stale_mode_never_rebuilds(self, drifted_stale):
        summary = drifted_stale.summaries[0]
        assert summary.rebuilds == 0
        # The drift is still *observed* (and recorded), just not acted on.
        assert any(r.drift_significant for r in drifted_stale.rows)

    def test_paired_arms_share_deadline(self, drifted_ewma, drifted_stale):
        assert (
            drifted_ewma.summaries[0].deadline_minutes
            == drifted_stale.summaries[0].deadline_minutes
        )


class TestProfileRoundTripUnderDrift:
    """ISSUE satellite: a run executed with a ProfileDrift applied,
    re-profiled via ``JobProfile.from_trace``, reproduces the drifted
    stage means."""

    def test_from_trace_reproduces_drifted_means(self, fleet_env):
        generated = mapreduce_job(num_maps=80, num_reduces=8)
        drift = ProfileDrift(at=0.0, factor=1.5)
        truth = drifted_profile(generated.profile, drift)

        def relearn(profile, seed=11):
            trace = run_training(
                dataclasses.replace(generated, profile=profile),
                seed=seed,
                allocation=40,
            )
            return JobProfile.from_trace(
                generated.graph, trace, min_failure_prob=0.001
            )

        calm = relearn(generated.profile)
        drifted = relearn(truth)
        for stage in truth.stage_names:
            learned = drifted.stage(stage).runtime.mean()
            expected = truth.stage(stage).runtime.mean()
            # Single-run stage means are noisy; the drilled-in factor must
            # still dominate the noise.
            assert learned == pytest.approx(expected, rel=0.35), stage
            ratio = learned / calm.stage(stage).runtime.mean()
            assert 1.15 < ratio < 1.95, stage

    def test_stage_scoped_drift_leaves_other_stages_alone(self):
        generated = mapreduce_job(num_maps=16, num_reduces=4)
        drift = ProfileDrift(at=0.0, factor=2.0, stages=("map",))
        truth = drifted_profile(generated.profile, drift)
        assert truth.stage("map").runtime.mean() == pytest.approx(
            2.0 * generated.profile.stage("map").runtime.mean()
        )
        assert truth.stage("reduce").runtime.mean() == pytest.approx(
            generated.profile.stage("reduce").runtime.mean()
        )


class TestRunFleetValidation:
    def test_empty_templates(self):
        with pytest.raises(FleetError, match="at least one"):
            run_fleet([], FleetConfig())

    def test_duplicate_names(self):
        with pytest.raises(FleetError, match="duplicate"):
            run_fleet([FleetTemplate("A"), FleetTemplate("A", job="C")])

    def test_unknown_job_names_offender(self):
        with pytest.raises(FleetError, match="unknown template job 'ZZZ'"):
            run_fleet([FleetTemplate("ZZZ")], FleetConfig(days=1))

    def test_bad_mode(self):
        with pytest.raises(FleetError, match="unknown model mode"):
            FleetConfig(model_mode="clairvoyant")

    def test_bad_days(self):
        with pytest.raises(FleetError, match="days"):
            FleetConfig(days=0)


class TestSpecParsing:
    def test_defaults(self):
        templates, config = fleet_spec_from_dict({})
        assert [t.name for t in templates] == ["A", "C"]
        assert config.model_mode == "ewma"
        assert config.days == 5

    def test_full_spec(self):
        templates, config = fleet_spec_from_dict({
            "templates": ["B", {"name": "etl", "job": "mapreduce"}],
            "days": 4,
            "mode": "window",
            "drift": {"day": 2, "factor": 1.8, "stages": ["map"]},
            "seed": 7,
            "scale": "smoke",
        })
        assert templates[1].job_name() == "mapreduce"
        assert config.model_mode == "window"
        assert config.drift.at == 2.0
        assert config.drift.stages == ("map",)
        assert config.seed == 7

    @pytest.mark.parametrize("bad", [
        {"bogus": 1},
        {"templates": []},
        {"templates": [42]},
        {"templates": [{"job": "A"}]},
        {"drift": "tomorrow"},
        {"drift": {"when": 3}},
        {"scale": "galactic"},
        {"days": "many"},
        {"mode": "clairvoyant"},
    ])
    def test_malformed_specs_raise_spec_error(self, bad):
        with pytest.raises(FleetSpecError):
            fleet_spec_from_dict(bad)

    def test_spec_error_is_a_fleet_error(self):
        assert issubclass(FleetSpecError, FleetError)

    def test_load_with_envelope(self, tmp_path):
        path = tmp_path / "fleet.json"
        path.write_text(
            '{"format_version": 1, "fleet": {"templates": ["A"], "days": 2}}',
            encoding="utf-8",
        )
        templates, config = load_fleet_spec(path)
        assert [t.name for t in templates] == ["A"]
        assert config.days == 2

    def test_load_bad_version(self, tmp_path):
        path = tmp_path / "fleet.json"
        path.write_text(
            '{"format_version": 99, "fleet": {}}', encoding="utf-8"
        )
        with pytest.raises(FleetSpecError, match="version"):
            load_fleet_spec(path)

    def test_load_missing_file(self, tmp_path):
        with pytest.raises(FleetSpecError, match="cannot read"):
            load_fleet_spec(tmp_path / "ghost.json")
