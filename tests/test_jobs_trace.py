"""Unit tests for run traces."""

import pytest

from repro.jobs.trace import (
    OUTCOME_EVICTED,
    OUTCOME_FAILED,
    OUTCOME_OK,
    RunTrace,
    TaskRecord,
    TraceError,
)


def record(stage="s", index=0, attempt=0, ready=0.0, start=1.0, end=3.0,
           outcome=OUTCOME_OK, spare=False):
    return TaskRecord(
        stage=stage, index=index, attempt=attempt,
        ready_time=ready, start_time=start, end_time=end,
        outcome=outcome, used_spare_token=spare,
    )


class TestTaskRecord:
    def test_queue_and_run_time(self):
        r = record(ready=1.0, start=4.0, end=9.0)
        assert r.queue_time == 3.0
        assert r.run_time == 5.0

    def test_succeeded_flag(self):
        assert record().succeeded
        assert not record(outcome=OUTCOME_FAILED).succeeded

    def test_monotonic_times_enforced(self):
        with pytest.raises(TraceError):
            record(ready=5.0, start=1.0)
        with pytest.raises(TraceError):
            record(start=5.0, end=1.0)

    def test_unknown_outcome(self):
        with pytest.raises(TraceError):
            record(outcome="exploded")

    def test_negative_attempt(self):
        with pytest.raises(TraceError):
            record(attempt=-1)


def finished_trace():
    trace = RunTrace(job_name="j", start_time=0.0, deadline=100.0)
    trace.add(record("map", 0, ready=0.0, start=0.0, end=10.0))
    trace.add(record("map", 1, ready=0.0, start=2.0, end=8.0, spare=True))
    trace.add(record("map", 2, attempt=0, ready=0.0, start=0.0, end=4.0,
                     outcome=OUTCOME_FAILED))
    trace.add(record("map", 2, attempt=1, ready=4.0, start=5.0, end=12.0))
    trace.add(record("reduce", 0, ready=12.0, start=14.0, end=30.0))
    trace.end_time = 30.0
    return trace


class TestRunTrace:
    def test_duration(self):
        assert finished_trace().duration == 30.0

    def test_duration_requires_finish(self):
        with pytest.raises(TraceError):
            RunTrace(job_name="j").duration

    def test_met_deadline(self):
        assert finished_trace().met_deadline()

    def test_met_deadline_requires_deadline(self):
        trace = RunTrace(job_name="j")
        trace.end_time = 1.0
        with pytest.raises(TraceError):
            trace.met_deadline()

    def test_total_cpu_counts_successes_only(self):
        # 10 + 6 + 7 + 16 (successful); failed attempt (4s) excluded.
        assert finished_trace().total_cpu_seconds() == 39.0

    def test_wasted_cpu(self):
        assert finished_trace().wasted_cpu_seconds() == 4.0

    def test_stage_runtimes(self):
        runtimes = finished_trace().stage_runtimes()
        assert sorted(runtimes["map"]) == [6.0, 7.0, 10.0]
        assert runtimes["reduce"] == [16.0]

    def test_stage_queue_times(self):
        queues = finished_trace().stage_queue_times()
        assert queues["reduce"] == [2.0]

    def test_stage_attempt_counts(self):
        counts = finished_trace().stage_attempt_counts()
        assert counts["map"] == (4, 1)
        assert counts["reduce"] == (1, 0)

    def test_spare_fraction(self):
        assert finished_trace().spare_fraction() == pytest.approx(0.25)

    def test_stage_relative_spans(self):
        spans = finished_trace().stage_relative_spans()
        assert spans["reduce"] == pytest.approx((14 / 30, 1.0))
        assert spans["map"][0] == 0.0

    def test_successful_records(self):
        assert len(finished_trace().successful_records()) == 4


class TestAllocationTimelines:
    def test_mark_allocation_deduplicates(self):
        trace = RunTrace(job_name="j")
        trace.mark_allocation(0.0, 10)
        trace.mark_allocation(5.0, 10)
        trace.mark_allocation(9.0, 20)
        assert trace.allocation_timeline == [(0.0, 10), (9.0, 20)]

    def test_allocation_seconds_integral(self):
        trace = RunTrace(job_name="j", start_time=0.0)
        trace.mark_allocation(0.0, 10)
        trace.mark_allocation(10.0, 20)
        trace.end_time = 30.0
        # 10 tokens x 10s + 20 tokens x 20s
        assert trace.allocation_seconds() == 500.0

    def test_allocation_seconds_empty(self):
        trace = RunTrace(job_name="j")
        trace.end_time = 10.0
        assert trace.allocation_seconds() == 0.0

    def test_allocation_excess_above_threshold(self):
        trace = RunTrace(job_name="j", start_time=0.0)
        trace.mark_allocation(0.0, 10)
        trace.mark_allocation(10.0, 30)
        trace.end_time = 20.0
        # threshold 15: first segment contributes 0, second (30-15)*10s.
        assert trace.allocation_excess_seconds(15) == 150.0

    def test_allocation_requires_finish(self):
        trace = RunTrace(job_name="j")
        trace.mark_allocation(0.0, 10)
        with pytest.raises(TraceError):
            trace.allocation_seconds()

    def test_mark_running_deduplicates(self):
        trace = RunTrace(job_name="j")
        trace.mark_running(0.0, 3)
        trace.mark_running(1.0, 3)
        trace.mark_running(2.0, 4)
        assert trace.running_timeline == [(0.0, 3), (2.0, 4)]
