"""Tests for the §2.4/§3.2 motivation studies and guaranteed-only mode."""

import pytest

from repro.experiments import exp_section24
from repro.experiments.scenarios import SMOKE


class TestGuaranteedOnlyMode:
    def test_never_uses_spare(self):
        from repro.runtime.jobmanager import JobManager, run_to_completion
        from repro.simkit.events import Simulator
        from tests.test_runtime_jobmanager import quiet_cluster, two_stage_job

        sim = Simulator()
        cluster = quiet_cluster(sim)
        graph, profile = two_stage_job()
        manager = JobManager(
            cluster, graph, profile, initial_allocation=2,
            use_spare_tokens=False,
        )
        trace = run_to_completion(manager)
        assert trace.spare_fraction() == 0.0
        # Serialized into waves of 2: 3 waves x 10s + 5s reduce.
        assert trace.duration == pytest.approx(35.0)

    def test_spare_weight_override(self):
        from repro.cluster import Consumer
        from repro.runtime.jobmanager import JobManager
        from repro.simkit.events import Simulator
        from tests.test_runtime_jobmanager import quiet_cluster, two_stage_job

        sim = Simulator()
        cluster = quiet_cluster(sim)
        graph, profile = two_stage_job()
        manager = JobManager(
            cluster, graph, profile, initial_allocation=2, spare_weight=77.0,
        )
        assert manager.consumer.weight == 77.0


class TestSpareVarianceStudy:
    def test_report_shape(self):
        report = exp_section24.run_spare_variance(SMOKE, reps=4)
        assert len(report.rows) == len(SMOKE.jobs)
        for _job, cov_spare, cov_guaranteed, ratio in report.rows:
            assert cov_spare >= 0 and cov_guaranteed >= 0
            assert ratio == pytest.approx(
                cov_spare / max(cov_guaranteed, 1e-9), rel=0.01
            )

    def test_spare_increases_variance_on_average(self):
        report = exp_section24.run_spare_variance(SMOKE, reps=4)
        ratios = [row[3] for row in report.rows]
        assert sum(ratios) / len(ratios) > 1.0


class TestQuotaSizingStudy:
    def test_report_shape(self):
        report = exp_section24.run_quota_sizing(SMOKE, num_jobs=8)
        assert len(report.rows) == 2
        for row in report.rows:
            assert 0.0 <= row[1] <= 100.0
