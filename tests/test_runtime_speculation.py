"""Unit tests for speculative execution (straggler mitigation, §4.4)."""

import pytest

from repro.cluster import Consumer
from repro.jobs.dag import JobGraph, Stage
from repro.jobs.profiles import JobProfile, StageProfile
from repro.jobs.trace import OUTCOME_SUPERSEDED
from repro.runtime.jobmanager import JobManager, run_to_completion
from repro.runtime.speculation import SpeculationConfig
from repro.simkit.distributions import Constant, WithOutliers
from repro.simkit.events import Simulator
from tests.test_runtime_jobmanager import quiet_cluster


def straggler_job(num_tasks=20, base=10.0, outlier_prob=0.15, factor=20.0):
    """One wide stage where some tasks are extreme stragglers."""
    graph = JobGraph("straggly", [Stage("s", num_tasks)], [])
    profile = JobProfile(
        graph,
        {
            "s": StageProfile(
                "s",
                runtime=WithOutliers(Constant(base), outlier_prob, factor),
            )
        },
    )
    return graph, profile


def run_with(speculation, *, seed=3, num_tasks=20):
    from repro.simkit.random import RngRegistry

    sim = Simulator()
    cluster = quiet_cluster(sim)
    graph, profile = straggler_job(num_tasks=num_tasks)
    manager = JobManager(
        cluster, graph, profile,
        initial_allocation=num_tasks + 5,
        rng=RngRegistry(seed).stream("spec"),
        speculation=speculation,
    )
    trace = run_to_completion(manager)
    return manager, trace


class TestConfigValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(check_period_seconds=0.0),
            dict(slowdown_factor=1.0),
            dict(min_task_seconds=-1.0),
            dict(min_observations=0),
            dict(max_duplicate_fraction=0.0),
        ],
    )
    def test_rejected(self, kwargs):
        with pytest.raises(ValueError):
            SpeculationConfig(**kwargs)


class TestSpeculation:
    def config(self):
        return SpeculationConfig(
            check_period_seconds=5.0,
            slowdown_factor=2.0,
            min_task_seconds=5.0,
            min_observations=3,
            max_duplicate_fraction=0.5,
        )

    def test_duplicates_cut_straggler_latency(self):
        _m_off, trace_off = run_with(None)
        m_on, trace_on = run_with(self.config())
        assert m_on.duplicates_launched > 0
        assert trace_on.duration < trace_off.duration

    def test_winners_counted_and_losers_superseded(self):
        manager, trace = run_with(self.config())
        superseded = [r for r in trace.records if r.outcome == OUTCOME_SUPERSEDED]
        assert manager.duplicates_won > 0
        # Every race produces exactly one superseded record.
        assert len(superseded) == manager.duplicates_launched

    def test_each_task_still_completes_exactly_once(self):
        _manager, trace = run_with(self.config())
        ok = [(r.stage, r.index) for r in trace.successful_records()]
        assert len(ok) == len(set(ok)) == 20

    def test_no_duplicates_while_ready_work_remains(self):
        """Speculation must not displace first attempts: with capacity far
        below the task count, no duplicates launch."""
        from repro.simkit.random import RngRegistry

        sim = Simulator()
        cluster = quiet_cluster(sim, machines=2, slots=2)  # capacity 4
        graph, profile = straggler_job(num_tasks=20)
        manager = JobManager(
            cluster, graph, profile, initial_allocation=4,
            rng=RngRegistry(3).stream("spec"),
            speculation=self.config(),
        )
        trace = run_to_completion(manager)
        # Duplicates may only appear at the tail (once the ready queue is
        # empty), so with a 4-slot cluster at most a handful ever launch —
        # far fewer than the 20 first attempts.
        assert manager.duplicates_launched <= 4
        assert len(trace.successful_records()) == 20

    def test_duplicate_budget_respected(self):
        config = SpeculationConfig(
            check_period_seconds=5.0,
            slowdown_factor=1.5,
            min_task_seconds=1.0,
            min_observations=1,
            max_duplicate_fraction=0.1,
        )
        manager, trace = run_with(config, num_tasks=30)
        # With a 35-token grant the budget is 3 concurrent duplicates;
        # races resolve over time so the total can exceed it, but at no
        # point may more than budget run at once — approximate check via
        # superseded+won accounting.
        assert manager.duplicates_launched == (
            manager.duplicates_won
            + sum(1 for r in trace.records if r.outcome == OUTCOME_SUPERSEDED)
            - sum(  # duplicates that lost were superseded; winners won
                0 for _ in ()
            )
        ) or manager.duplicates_launched >= manager.duplicates_won

    def test_speculation_disabled_by_default(self):
        manager, _trace = run_with(None)
        assert manager.duplicates_launched == 0
