"""Determinism of the chaos subsystem: a fixed seed + spec replays
bit-identically — same trace JSONL bytes, same summary, and the same
sweep digest regardless of how many worker processes run it — plus the
acceptance properties of the ``exp_chaos`` sweep itself.
"""

import dataclasses
import hashlib
import io
import json
import os

import pytest

from repro.chaos.spec import (
    ChaosSpec,
    ControlFaults,
    EvictionStorm,
    ProfileDrift,
    RackFailure,
    TokenShock,
)
from repro.experiments import SMOKE, RunConfig, make_policy, run_experiment, trained_job
from repro.experiments import exp_chaos
from repro.telemetry import export as telemetry_export


def _spec() -> ChaosSpec:
    return ChaosSpec(
        name="det",
        rack_failures=(RackFailure(at=120.0, count=4, repair_seconds=300.0),),
        eviction_storms=(
            EvictionStorm(start=200.0, end=700.0, demand_fraction=0.5),
        ),
        token_shocks=(
            TokenShock(start=250.0, end=900.0, guaranteed_fraction=0.3),
        ),
        profile_drifts=(ProfileDrift(at=150.0, factor=1.4),),
        control_faults=ControlFaults(
            drop_tick_prob=0.1,
            delay_tick_prob=0.1,
            delay_seconds=20.0,
            blackouts=((300.0, 1200.0),),
        ),
    )


@pytest.fixture(scope="module")
def trained():
    return trained_job("C", seed=0, scale=SMOKE)


def _run_once(trained):
    deadline = trained.short_deadline
    policy = make_policy("jockey", trained, deadline)
    return run_experiment(
        trained,
        policy,
        RunConfig(
            deadline_seconds=deadline,
            seed=7,
            capture_trace=True,
            chaos=_spec(),
        ),
    )


def _jsonl_bytes(result) -> bytes:
    buf = io.StringIO()
    telemetry_export.write_jsonl(result.trace_events, buf)
    return buf.getvalue().encode("utf-8")


class TestReplayDeterminism:
    def test_trace_jsonl_byte_identical(self, trained):
        first = _run_once(trained)
        second = _run_once(trained)
        a, b = _jsonl_bytes(first), _jsonl_bytes(second)
        assert hashlib.sha256(a).hexdigest() == hashlib.sha256(b).hexdigest()
        assert a == b
        # The run actually exercised the injectors — this is not a
        # vacuous comparison of two calm runs.
        assert any(e.kind.startswith("chaos.") for e in first.trace_events)

    def test_chaos_summary_stable(self, trained):
        first = _run_once(trained)
        second = _run_once(trained)
        assert first.chaos_summary == second.chaos_summary
        assert first.chaos_summary["machines_failed"] > 0

    def test_intensity_scales_are_distinct(self, trained):
        """Sanity: a different intensity is a different run (guards
        against the spec being silently ignored)."""
        deadline = trained.short_deadline
        results = {}
        for intensity in (0.0, 1.0):
            chaos = dataclasses.replace(_spec(), intensity=intensity)
            policy = make_policy("jockey", trained, deadline)
            results[intensity] = run_experiment(
                trained,
                policy,
                RunConfig(deadline_seconds=deadline, seed=7, chaos=chaos),
            )
        assert (
            results[0.0].chaos_summary["machines_failed"]
            < results[1.0].chaos_summary["machines_failed"]
        )


def _sweep_digest(tmp_path, monkeypatch, jobs: str) -> bytes:
    monkeypatch.setenv("REPRO_JOBS", jobs)
    monkeypatch.chdir(tmp_path)
    exp_chaos.run(SMOKE, seed=0)
    return (tmp_path / exp_chaos.DIGEST_PATH).read_bytes()


class TestSweepDigest:
    @pytest.fixture(scope="class")
    def digest_serial(self, tmp_path_factory):
        tmp = tmp_path_factory.mktemp("chaos_serial")
        old_jobs = os.environ.get("REPRO_JOBS")
        old_cwd = os.getcwd()
        os.environ["REPRO_JOBS"] = "1"
        os.chdir(tmp)
        try:
            exp_chaos.run(SMOKE, seed=0)
            return (tmp / exp_chaos.DIGEST_PATH).read_bytes()
        finally:
            os.chdir(old_cwd)
            if old_jobs is None:
                os.environ.pop("REPRO_JOBS", None)
            else:
                os.environ["REPRO_JOBS"] = old_jobs

    def test_digest_identical_across_worker_counts(
        self, digest_serial, tmp_path, monkeypatch
    ):
        parallel = _sweep_digest(tmp_path, monkeypatch, jobs="2")
        assert (
            hashlib.sha256(digest_serial).hexdigest()
            == hashlib.sha256(parallel).hexdigest()
        )

    def test_attainment_monotone_and_fallback_wins(self, digest_serial):
        """The ISSUE's acceptance shape: per-mode SLO attainment is
        monotone non-increasing in intensity, and at the highest
        intensity the degraded-mode fallback attains strictly higher
        utility than the no-fallback ablation."""
        digest = json.loads(digest_serial.decode("utf-8"))
        by_mode = {}
        for agg in digest["aggregates"]:
            by_mode.setdefault(agg["mode"], []).append(
                (agg["intensity"], agg["attainment"], agg["mean_utility"])
            )
        for mode, cells in by_mode.items():
            cells.sort()
            attainments = [a for _i, a, _u in cells]
            assert attainments == sorted(attainments, reverse=True), mode
        top = max(digest["intensities"])
        utility = {
            agg["mode"]: agg["mean_utility"]
            for agg in digest["aggregates"]
            if agg["intensity"] == top
        }
        assert utility["fallback"] > utility["no-fallback"]

    def test_digest_records_runs_and_schedule(self, digest_serial):
        digest = json.loads(digest_serial.decode("utf-8"))
        assert digest["experiment"] == "chaos"
        assert digest["intensities"] == list(exp_chaos.INTENSITIES)
        assert digest["modes"] == list(exp_chaos.MODES)
        assert len(digest["runs"]) == sum(
            agg["runs"] for agg in digest["aggregates"]
        )
        # The sweep exercised the degraded path and the arbiter-retry
        # path at non-zero intensity.
        hot = [r for r in digest["runs"] if r["intensity"] > 0]
        assert any(r["degraded_ticks"] > 0 for r in hot)
        assert any(r["allocation_deficits"] > 0 for r in hot)
