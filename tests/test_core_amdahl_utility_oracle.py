"""Unit tests for the Amdahl model, utility functions, and the oracle."""

import pytest

from repro.core.amdahl import AmdahlModel
from repro.core.oracle import oracle_allocation
from repro.core.utility import (
    PiecewiseLinearUtility,
    UtilityError,
    deadline_utility,
)
from tests.test_core_progress import profile


class TestAmdahlModel:
    def test_initial_prediction_formula(self):
        model = AmdahlModel(profile())
        # S_0 = max(10+30, 30+0) = 40; P_0 = 40 + 60 = 100.
        assert model.predicted_duration(10) == pytest.approx(40 + 100 / 10)
        assert model.predicted_duration(100) == pytest.approx(40 + 100 / 100)

    def test_remaining_with_partial_progress(self):
        model = AmdahlModel(profile())
        fractions = {"map": 0.5, "reduce": 0.0}
        # S = max(0.5*10+30, 30) = 35; P = 0.5*40 + 60 = 80.
        assert model.remaining_seconds(fractions, 10) == pytest.approx(35 + 8.0)

    def test_finished_stages_drop_out(self):
        model = AmdahlModel(profile())
        fractions = {"map": 1.0, "reduce": 0.5}
        # S = 0.5*30 + 0 = 15; P = 0.5*60 = 30.
        assert model.remaining_seconds(fractions, 10) == pytest.approx(15 + 3.0)

    def test_all_done_is_zero(self):
        model = AmdahlModel(profile())
        assert model.remaining_seconds({"map": 1.0, "reduce": 1.0}, 10) == 0.0

    def test_more_tokens_never_slower(self):
        model = AmdahlModel(profile())
        f = {"map": 0.2, "reduce": 0.0}
        values = [model.remaining_seconds(f, a) for a in (1, 5, 20, 100)]
        assert values == sorted(values, reverse=True)

    def test_invalid_allocation(self):
        with pytest.raises(ValueError):
            AmdahlModel(profile()).remaining_seconds({"map": 0, "reduce": 0}, 0)


class TestPiecewiseLinearUtility:
    def test_interpolation(self):
        u = PiecewiseLinearUtility(points=((0.0, 1.0), (10.0, 0.0)))
        assert u.value(5.0) == pytest.approx(0.5)

    def test_flat_before_first_point(self):
        u = PiecewiseLinearUtility(points=((5.0, 1.0), (10.0, -1.0)))
        assert u.value(0.0) == 1.0

    def test_slope_continues_after_last_point(self):
        # Final slope -0.4/s keeps going: later is always worse (§4.4).
        u = PiecewiseLinearUtility(points=((5.0, 1.0), (10.0, -1.0)))
        assert u.value(15.0) == pytest.approx(-3.0)
        assert u.value(20.0) < u.value(15.0)

    def test_callable(self):
        u = PiecewiseLinearUtility(points=((0.0, 1.0), (10.0, 0.0)))
        assert u(2.5) == u.value(2.5)

    def test_shifted_left(self):
        u = PiecewiseLinearUtility(points=((10.0, 1.0), (20.0, 0.0)))
        shifted = u.shifted_left(5.0)
        assert shifted.value(10.0) == pytest.approx(0.5)

    def test_negative_shift_rejected(self):
        u = PiecewiseLinearUtility(points=((0.0, 1.0), (1.0, 0.0)))
        with pytest.raises(UtilityError):
            u.shifted_left(-1.0)

    def test_needs_two_points(self):
        with pytest.raises(UtilityError):
            PiecewiseLinearUtility(points=((0.0, 1.0),))

    def test_times_strictly_increasing(self):
        with pytest.raises(UtilityError):
            PiecewiseLinearUtility(points=((0.0, 1.0), (0.0, 0.0)))

    def test_max_value(self):
        u = PiecewiseLinearUtility(points=((0.0, 1.0), (10.0, -3.0)))
        assert u.max_value == 1.0


class TestDeadlineUtility:
    def test_paper_shape(self):
        d = 3600.0
        u = deadline_utility(d)
        assert u.value(0.0) == 1.0
        assert u.value(d) == 1.0
        assert u.value(d + 600.0) == pytest.approx(-1.0)
        assert u.value(d + 60_000.0) == pytest.approx(-1000.0)

    def test_steep_drop_after_deadline(self):
        u = deadline_utility(3600.0)
        assert u.value(3600.0 + 300.0) == pytest.approx(0.0)

    def test_invalid_deadline(self):
        with pytest.raises(UtilityError):
            deadline_utility(0.0)


class TestOracle:
    def test_ceiling_division(self):
        assert oracle_allocation(3600.0, 3600.0) == 1
        assert oracle_allocation(3601.0, 3600.0) == 2
        assert oracle_allocation(10 * 3600.0, 3600.0) == 10

    def test_minimum_one_token(self):
        assert oracle_allocation(0.0, 3600.0) == 1

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            oracle_allocation(-1.0, 10.0)
        with pytest.raises(ValueError):
            oracle_allocation(1.0, 0.0)
