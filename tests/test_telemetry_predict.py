"""Unit tests for the prediction observatory: interval ledger, band
construction, calibration engine, and the audit-trail replay guarantee."""

import numpy as np
import pytest

from repro.core.control import ControlConfig, CpaPredictor, JockeyController
from repro.core.cpa import CpaTable
from repro.core.progress import totalwork
from repro.core.utility import deadline_utility
from repro.telemetry.predict import (
    IntervalBand,
    NOMINAL_LEVELS,
    PredictError,
    PredictionLedger,
    PredictionRecord,
    RELIABILITY_HEADERS,
    TIMELINE_HEADERS,
    VERDICT_CONSERVATIVE,
    VERDICT_HONEST,
    VERDICT_NO_DATA,
    VERDICT_OVERCONFIDENT,
    calibration,
    interval_hits,
    intervals_from_audit,
    level_label,
    pinball_loss,
    pooled_calibration,
    quantiles_for,
    record_from_quantiles,
    reliability_rows,
    rolling_coverage,
    timeline_rows,
)
from tests.test_core_simulator import deterministic_profile


def make_record(tick, elapsed, median, half_widths):
    """Synthetic record: symmetric completion-time bands about ``median``
    with explicit half-widths per level."""
    bands = tuple(
        IntervalBand(level=level, lo=median - hw, hi=median + hw)
        for level, hw in sorted(half_widths.items())
    )
    return PredictionRecord(
        tick=tick, elapsed=elapsed, progress=0.5, allocation=10,
        median=median, bands=bands,
    )


class TestQuantilesFor:
    def test_includes_median_and_symmetric_pairs(self):
        qs = quantiles_for((0.8,))
        assert qs == pytest.approx((0.1, 0.5, 0.9))

    def test_sorted_and_deduplicated(self):
        qs = quantiles_for((0.8, 0.8, 0.5))
        assert qs == pytest.approx((0.1, 0.25, 0.5, 0.75, 0.9))
        assert list(qs) == sorted(qs)

    @pytest.mark.parametrize("level", [0.0, 1.0, -0.1, 1.5])
    def test_rejects_out_of_range_levels(self, level):
        with pytest.raises(PredictError):
            quantiles_for((level,))


class TestLevelLabel:
    def test_drops_trailing_zeros(self):
        assert level_label(0.9) == "90"
        assert level_label(0.95) == "95"
        assert level_label(0.5) == "50"


class TestRecordFromQuantiles:
    # Linear quantile function over exactly the keys the live hook uses
    # (dict float keys must match quantiles_for's own arithmetic).
    QUANTILES = {
        q: 100.0 + 25.0 * (2.0 * q - 1.0)
        for q in quantiles_for(NOMINAL_LEVELS)
    }

    def build(self, **kwargs):
        defaults = dict(
            tick=0, elapsed=50.0, progress=0.4, allocation=20,
            quantiles=dict(self.QUANTILES), levels=NOMINAL_LEVELS,
        )
        defaults.update(kwargs)
        return record_from_quantiles(**defaults)

    def test_median_is_elapsed_plus_remaining_median(self):
        rec = self.build(error_rel=0.0)
        assert rec.median == 150.0

    def test_raw_bands_match_quantiles_when_error_rel_zero(self):
        # q(0.1) = 80, q(0.9) = 120 under the linear quantile function.
        rec = self.build(error_rel=0.0)
        b80 = rec.band(0.8)
        assert b80.lo == pytest.approx(50.0 + 80.0)
        assert b80.hi == pytest.approx(50.0 + 120.0)

    def test_envelope_widens_in_quadrature(self):
        raw = self.build(error_rel=0.0).band(0.8)
        fat = self.build(error_rel=0.1).band(0.8)
        # Raw half-width 20; sigma = 0.1 * 150; extra = 0.8 * 15 = 12.
        expected_lo = 150.0 - (20.0 ** 2 + 12.0 ** 2) ** 0.5
        assert fat.lo == pytest.approx(expected_lo)
        assert fat.width > raw.width

    def test_bands_never_predict_the_past(self):
        # A huge envelope would push lo below the current elapsed time.
        rec = self.build(error_rel=5.0)
        for band in rec.bands:
            assert band.lo >= rec.elapsed

    def test_band_widths_monotone_in_level(self):
        rec = self.build()
        widths = [b.width for b in rec.bands]
        assert widths == sorted(widths)

    def test_missing_median_rejected(self):
        qs = {k: v for k, v in self.QUANTILES.items() if k != 0.5}
        with pytest.raises(PredictError):
            self.build(quantiles=qs)

    def test_missing_level_quantile_rejected(self):
        lowest = min(self.QUANTILES)
        qs = {k: v for k, v in self.QUANTILES.items() if k != lowest}
        with pytest.raises(PredictError):
            self.build(quantiles=qs, levels=(0.95,))

    def test_negative_error_rel_rejected(self):
        with pytest.raises(PredictError):
            self.build(error_rel=-0.1)

    def test_band_lookup_misses_return_none(self):
        assert self.build().band(0.42) is None

    def test_covers_is_inclusive(self):
        band = IntervalBand(level=0.8, lo=10.0, hi=20.0)
        assert band.covers(10.0) and band.covers(20.0)
        assert not band.covers(9.999) and not band.covers(20.001)

    def test_deadline_in_force_replays_schedule(self):
        rec = make_record(0, elapsed=120.0, median=200.0, half_widths={0.9: 10.0})
        assert rec.deadline_in_force(600.0) == 600.0
        assert rec.deadline_in_force(600.0, schedule=((100.0, 900.0),)) == 900.0


class TestLedger:
    def test_records_in_order(self):
        ledger = PredictionLedger()
        for i in range(3):
            ledger.record(make_record(i, float(i), 100.0, {0.9: 5.0}))
        assert [r.tick for r in ledger.records()] == [0, 1, 2]
        assert len(ledger) == 3

    def test_capacity_evicts_oldest(self):
        ledger = PredictionLedger(capacity=2)
        for i in range(4):
            ledger.record(make_record(i, float(i), 100.0, {0.9: 5.0}))
        assert [r.tick for r in ledger.records()] == [2, 3]

    def test_clear(self):
        ledger = PredictionLedger()
        ledger.record(make_record(0, 0.0, 100.0, {0.9: 5.0}))
        ledger.clear()
        assert len(ledger) == 0

    def test_bad_capacity_rejected(self):
        with pytest.raises(PredictError):
            PredictionLedger(capacity=0)


class TestCalibration:
    def covering_records(self, n_cover, n_miss, level=0.8, duration=100.0):
        records = []
        for i in range(n_cover):
            records.append(make_record(i, 10.0, duration, {level: 5.0}))
        for i in range(n_miss):
            records.append(
                make_record(n_cover + i, 10.0, duration + 50.0, {level: 5.0})
            )
        return records

    def test_exact_coverage_is_honest(self):
        records = self.covering_records(8, 2)
        report = calibration(records, 100.0)
        lv = report.level(0.8)
        assert lv.covered == 8 and lv.ticks == 10
        assert lv.empirical == pytest.approx(0.8)
        assert lv.verdict == VERDICT_HONEST
        assert report.verdict == VERDICT_HONEST

    def test_undercoverage_is_overconfident(self):
        report = calibration(self.covering_records(3, 7), 100.0)
        assert report.level(0.8).verdict == VERDICT_OVERCONFIDENT
        assert report.verdict == VERDICT_OVERCONFIDENT

    def test_overcoverage_is_conservative(self):
        report = calibration(self.covering_records(10, 0), 100.0)
        assert report.level(0.8).verdict == VERDICT_CONSERVATIVE
        assert report.verdict == VERDICT_CONSERVATIVE

    def test_overconfidence_dominates_conservatism(self):
        records = (
            self.covering_records(3, 7, level=0.8)
            + self.covering_records(10, 0, level=0.5)
        )
        assert calibration(records, 100.0).verdict == VERDICT_OVERCONFIDENT

    def test_empty_ledger_is_no_data(self):
        report = calibration([], 100.0)
        assert report.verdict == VERDICT_NO_DATA
        assert report.ticks == 0

    def test_short_ledger_widens_tolerance(self):
        # 2 of 3 covered at level 0.9: |0.667 - 0.9| = 0.23 < 1/3.
        report = calibration(self.covering_records(2, 1, level=0.9), 100.0)
        assert report.level(0.9).verdict == VERDICT_HONEST

    def test_duration_must_be_positive(self):
        with pytest.raises(PredictError):
            calibration([], 0.0)

    def test_summary_is_json_round_trippable(self):
        import json

        report = calibration(self.covering_records(8, 2), 100.0)
        payload = json.loads(json.dumps(report.summary(), sort_keys=True))
        assert payload["verdict"] == VERDICT_HONEST
        assert payload["levels"][0]["empirical_coverage"] == pytest.approx(0.8)


class TestPinballLoss:
    def test_perfect_point_forecast_scores_zero(self):
        rec = make_record(0, 10.0, 100.0, {0.8: 0.0})
        assert pinball_loss([rec], 100.0) == pytest.approx(0.0)

    def test_hand_computed_single_band(self):
        # Median 90, band [80, 100] at level 0.8; duration 100.
        # tau=0.5 @ 90: 0.5*10 = 5; tau=0.1 @ 80: 0.1*20 = 2;
        # tau=0.9 @ 100: 0.9*0 = 0.  Mean over 3 = 7/3.
        rec = make_record(0, 10.0, 90.0, {0.8: 10.0})
        assert pinball_loss([rec], 100.0) == pytest.approx(7.0 / 3.0)

    def test_sharper_honest_forecast_scores_lower(self):
        sharp = make_record(0, 10.0, 100.0, {0.8: 5.0})
        vague = make_record(0, 10.0, 100.0, {0.8: 50.0})
        assert pinball_loss([sharp], 100.0) < pinball_loss([vague], 100.0)

    def test_empty_is_zero(self):
        assert pinball_loss([], 100.0) == 0.0


class TestRollingCoverage:
    def test_window_localizes_late_run_misses(self):
        covers = [make_record(i, float(i), 100.0, {0.9: 5.0}) for i in range(6)]
        misses = [
            make_record(6 + i, 6.0 + i, 200.0, {0.9: 5.0}) for i in range(6)
        ]
        points = rolling_coverage(covers + misses, 100.0, window=3)
        assert points[2].coverage == pytest.approx(1.0)
        assert points[-1].coverage == pytest.approx(0.0)
        assert points[-1].verdict == VERDICT_OVERCONFIDENT

    def test_window_never_exceeds_available_ticks(self):
        records = [make_record(i, float(i), 100.0, {0.9: 5.0}) for i in range(2)]
        points = rolling_coverage(records, 100.0, window=10)
        assert [p.window for p in points] == [1, 2]

    def test_bad_window_rejected(self):
        with pytest.raises(PredictError):
            rolling_coverage([], 100.0, window=0)


class TestPooledCalibration:
    def test_records_judged_against_their_own_duration(self):
        # Run A completes at 100 with bands around 100; run B at 300 with
        # bands around 300.  Pooled against a shared mean they'd all miss.
        run_a = [make_record(i, 10.0, 100.0, {0.9: 5.0}) for i in range(4)]
        run_b = [make_record(i, 10.0, 300.0, {0.9: 5.0}) for i in range(4)]
        report = pooled_calibration([(run_a, 100.0), (run_b, 300.0)])
        assert report.coverage(0.9) == pytest.approx(1.0)
        assert report.duration == pytest.approx(200.0)

    def test_tolerance_scales_with_run_count_not_tick_count(self):
        # 4 runs, level 0.9: 2-sigma binomial tolerance = 2*sqrt(.09/4)
        # = 0.3, so 3-of-4 runs covering (0.75 empirical) stays honest
        # even with many ticks per run.
        cover = [
            [make_record(i, 10.0, 100.0, {0.9: 5.0}) for i in range(20)]
            for _ in range(3)
        ]
        miss = [make_record(i, 10.0, 200.0, {0.9: 5.0}) for i in range(20)]
        ledgers = [(r, 100.0) for r in cover] + [(miss, 100.0)]
        report = pooled_calibration(ledgers)
        assert report.coverage(0.9) == pytest.approx(0.75)
        assert report.level(0.9).verdict == VERDICT_HONEST

    def test_gross_undercoverage_still_flagged(self):
        # 25 runs, only 2 covering: 0.08 << 0.9 - 2*sqrt(.09/25) = 0.78.
        ledgers = []
        for i in range(25):
            median = 100.0 if i < 2 else 500.0
            ledgers.append(
                ([make_record(0, 10.0, median, {0.9: 5.0})], 100.0)
            )
        report = pooled_calibration(ledgers)
        assert report.level(0.9).verdict == VERDICT_OVERCONFIDENT

    def test_pinball_pools_tick_weighted(self):
        run_a = [make_record(0, 10.0, 100.0, {0.8: 0.0})]
        run_b = [make_record(0, 10.0, 90.0, {0.8: 10.0})] * 2
        report = pooled_calibration([(run_a, 100.0), (run_b, 100.0)])
        assert report.pinball_loss == pytest.approx((0.0 + 2 * 7.0 / 3.0) / 3)

    def test_empty_pool_is_no_data(self):
        assert pooled_calibration([]).verdict == VERDICT_NO_DATA

    def test_bad_duration_rejected(self):
        with pytest.raises(PredictError):
            pooled_calibration([([], -1.0)])


class TestIntervalHits:
    def test_counts_per_level(self):
        records = [
            make_record(0, 10.0, 100.0, {0.8: 5.0, 0.95: 10.0}),
            make_record(1, 10.0, 200.0, {0.8: 5.0, 0.95: 150.0}),
        ]
        hits = interval_hits(records, 100.0)
        assert hits == ((0.8, 1, 2), (0.95, 2, 2))

    def test_missing_level_counts_zero_ticks(self):
        records = [make_record(0, 10.0, 100.0, {0.8: 5.0})]
        assert interval_hits(records, 100.0, levels=(0.5,)) == ((0.5, 0, 0),)


class TestRows:
    def records(self):
        return [
            make_record(i, 60.0 * i, 600.0, {0.5: 10.0, 0.8: 20.0,
                                             0.9: 30.0, 0.95: 40.0})
            for i in range(3)
        ]

    def test_timeline_rows_match_headers(self):
        rows = timeline_rows(self.records(), duration=600.0, deadline=900.0)
        assert len(rows) == 3
        assert all(len(r) == len(TIMELINE_HEADERS) for r in rows)
        assert rows[0][-1] == "y"
        assert rows[0][-2] == pytest.approx(15.0)   # deadline in minutes

    def test_timeline_without_duration_marks_dash(self):
        rows = timeline_rows(self.records())
        assert rows[0][-1] == "-"
        assert rows[0][-2] == "-"

    def test_reliability_rows_match_headers(self):
        report = calibration(self.records(), 600.0)
        rows = reliability_rows(report)
        assert len(rows) == 4
        assert all(len(r) == len(RELIABILITY_HEADERS) for r in rows)
        assert rows[0][0] == "50%"


class TestAuditReplay:
    """The offline replay from the audit trail must reproduce the live
    ledger exactly (the guarantee promised in ``intervals_from_audit``)."""

    @pytest.fixture()
    def table(self):
        profile = deterministic_profile()
        return CpaTable.build(
            profile,
            totalwork(profile),
            np.random.default_rng(0),
            allocations=(1, 2, 4, 8),
            reps=3,
            num_bins=20,
            sample_dt=2.0,
        )

    def test_replay_reproduces_live_ledger(self, table):
        profile = deterministic_profile()
        predictor = CpaPredictor(table, totalwork(profile))
        ctl = JockeyController(
            predictor,
            deadline_utility(120.0),
            ControlConfig(slack=1.2, hysteresis=1.0, dead_zone_seconds=0.0,
                          min_tokens=1, max_tokens=8, allocation_step=1),
            stage_names=("map", "reduce"),
        )
        ctl.initial_allocation()
        fractions = [
            {"map": 0.2, "reduce": 0.0},
            {"map": 0.7, "reduce": 0.0},
            {"map": 1.0, "reduce": 0.5},
        ]
        for i, fr in enumerate(fractions):
            ctl.decide(fr, elapsed=20.0 * (i + 1))
        live = ctl.predictions.records()
        assert len(live) == 4    # initial + three ticks
        replayed = intervals_from_audit(ctl.audit.decisions(), table)
        assert replayed == live

    def test_replay_skips_records_without_progress(self, table):
        class NoProgress:
            tick = 0
            elapsed = 0.0
            progress = None
            allocation = 4

        assert intervals_from_audit([NoProgress()], table) == []
