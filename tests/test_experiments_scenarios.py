"""Unit tests for experiment scaffolding: scales, deadlines, training."""

import numpy as np
import pytest

from repro.core.cpa import CpaTable
from repro.core.progress import totalwork
from repro.experiments.scenarios import (
    DEADLINE_GRID,
    DEFAULT,
    PAPER,
    SCALES,
    SMOKE,
    Scale,
    clear_trained_cache,
    pick_deadline,
    trained_job,
    trained_jobs,
)
from tests.test_core_simulator import deterministic_profile


class TestScale:
    def test_presets_registered(self):
        assert set(SCALES) == {"smoke", "default", "paper"}

    def test_default_covers_all_seven_jobs(self):
        assert DEFAULT.jobs == tuple("ABCDEFG")
        assert PAPER.reps > DEFAULT.reps

    def test_validation(self):
        with pytest.raises(ValueError):
            Scale("bad", jobs=("A",), reps=0, cpa_reps=1, allocations=(10,))
        with pytest.raises(ValueError):
            Scale("bad", jobs=(), reps=1, cpa_reps=1, allocations=(10,))


class TestPickDeadline:
    def make_table(self):
        profile = deterministic_profile(num_maps=60, map_time=60.0)
        return CpaTable.build(
            profile, totalwork(profile), np.random.default_rng(0),
            allocations=(10, 50, 100), reps=3,
        )

    def test_rounded_to_five_minutes(self):
        deadline = pick_deadline(self.make_table())
        assert deadline % 300 == 0

    def test_headroom_respected(self):
        table = self.make_table()
        deadline = pick_deadline(table, headroom=2.0)
        fastest = table.predicted_duration(100, q=0.9)
        assert deadline >= 2.0 * fastest

    def test_minimum_deadline(self):
        # A trivially small job still gets the grid minimum.
        profile = deterministic_profile(num_maps=2, map_time=1.0,
                                        reduce_time=1.0)
        table = CpaTable.build(
            profile, totalwork(profile), np.random.default_rng(0),
            allocations=(10,), reps=2,
        )
        assert pick_deadline(table) == DEADLINE_GRID[0]


class TestTrainedJobCaching:
    def test_cache_cleared(self):
        a = trained_job("A", seed=0, scale=SMOKE)
        clear_trained_cache()
        b = trained_job("A", seed=0, scale=SMOKE)
        assert a is not b

    def test_no_cache_option(self):
        a = trained_job("A", seed=0, scale=SMOKE)
        b = trained_job("A", seed=0, scale=SMOKE, use_cache=False)
        assert a is not b

    def test_trained_jobs_roster(self):
        jobs = trained_jobs(seed=0, scale=SMOKE)
        assert set(jobs) == set(SMOKE.jobs)

    def test_deterministic_training(self):
        clear_trained_cache()
        a = trained_job("C", seed=3, scale=SMOKE, use_cache=False)
        b = trained_job("C", seed=3, scale=SMOKE, use_cache=False)
        assert a.training_trace.duration == b.training_trace.duration
        assert a.short_deadline == b.short_deadline
