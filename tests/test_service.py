"""Live service lifecycle tests: arbiter + workers, all in-process.

The heavy end-to-end path (CLI serve + worker processes + loadgen) runs
in CI's service-smoke job; here everything shares one process so the
suite stays fast and deterministic.  Templates are injected tiny bundles
— constant task runtimes, a handful of tasks — and time is compressed
hard (a 30-virtual-second task is ~60 ms of wall time).
"""

import pathlib
import sys
import time

import pytest

from repro.jobs.dag import Edge, EdgeType, JobGraph, Stage
from repro.jobs.profiles import JobProfile, StageProfile
from repro.service import (
    ClusterService,
    LoadgenConfig,
    ServiceClient,
    ServiceClientError,
    ServiceConfig,
    ServiceError,
    ServiceWorker,
    TemplateModelStore,
    WorkerConfig,
    generate_workload,
)
from repro.service.loadgen import workload_fingerprint
from repro.simkit.distributions import Constant


def tiny_store(runtime_map=30.0, runtime_reduce=20.0):
    """A 2-stage map/reduce template with constant task runtimes."""
    graph = JobGraph(
        "tiny",
        [Stage("map", 6), Stage("reduce", 2)],
        [Edge("map", "reduce", EdgeType.ALL_TO_ALL)],
    )
    profile = JobProfile(
        graph,
        {
            "map": StageProfile("map", runtime=Constant(runtime_map)),
            "reduce": StageProfile("reduce", runtime=Constant(runtime_reduce)),
        },
    )
    store = TemplateModelStore(seed=0)
    store.add("tiny", graph, profile, None)
    return store


class TestServiceConfig:
    def test_rejects_bad_capacity(self):
        with pytest.raises(ServiceError):
            ServiceConfig(capacity_tokens=0)

    def test_rejects_bad_time_scale(self):
        with pytest.raises(ServiceError):
            ServiceConfig(time_scale=0.0)

    def test_rejects_bad_slack(self):
        with pytest.raises(ServiceError):
            ServiceConfig(slack=0.5)

    def test_poll_interval_derived_from_time_scale(self):
        assert ServiceConfig(time_scale=0.02).effective_poll_seconds == \
            pytest.approx(0.04)
        assert ServiceConfig(
            time_scale=0.02, poll_seconds=0.2
        ).effective_poll_seconds == pytest.approx(0.2)


class TestLifecycle:
    """Server + 2 workers: register, submit, poll to completion."""

    @pytest.fixture(scope="class")
    def service(self):
        config = ServiceConfig(
            capacity_tokens=8,
            tick_seconds=30.0,
            time_scale=0.002,
            heartbeat_timeout=5.0,
        )
        with ClusterService(config, store=tiny_store()) as svc:
            workers = [
                ServiceWorker(
                    WorkerConfig(url=svc.url, name=f"w{i}", slots=4)
                ).start()
                for i in (1, 2)
            ]
            yield svc
            for worker in workers:
                worker.stop()

    @pytest.fixture(scope="class")
    def client(self, service):
        return ServiceClient(service.url)

    @pytest.fixture(scope="class")
    def finished_job(self, client):
        reply = client.submit(
            template="tiny", deadline_minutes=30.0, policy="jockey-no-sim"
        )
        info = client.wait(reply["job_id"], timeout=60.0)
        return reply, info

    def test_healthz(self, client):
        deadline = time.monotonic() + 5.0
        while time.monotonic() < deadline:
            health = client.healthz()
            if health["workers"] == 2:
                break
            time.sleep(0.02)
        assert health["status"] == "ok"
        assert health["workers"] == 2

    def test_templates_listed(self, client):
        assert "tiny" in client.templates()["templates"]
        info = client.template_info("tiny")
        assert info["width"] == 6
        assert info["min_feasible_seconds"] > 0

    def test_submit_runs_to_completion(self, finished_job):
        reply, info = finished_job
        assert reply["status"] in ("running", "queued")
        assert info["status"] == "completed"
        assert info["completed_tasks"] == info["total_tasks"] == 8
        assert info["stage_fractions"] == {"map": 1.0, "reduce": 1.0}
        assert info["duration_seconds"] > 0

    def test_result_includes_trace_accounting(self, client, finished_job):
        reply, _info = finished_job
        result = client.result(reply["job_id"])
        assert result["met_deadline"] is True
        assert result["total_cpu_seconds"] > 0
        assert result["allocation_seconds"] > 0

    def test_report_renders_text_and_html(self, client, finished_job):
        reply, _info = finished_job
        text = client.report(reply["job_id"], "text")
        assert "SLO MET" in text
        html = client.report(reply["job_id"], "html")
        assert html.lstrip().startswith("<!DOCTYPE html>")

    def test_deadline_endpoint_reports_status(self, client, finished_job):
        reply, _info = finished_job
        info = client.deadline(reply["job_id"])
        assert info["deadline_seconds"] == pytest.approx(30.0 * 60.0)

    def test_command_job_executes_subprocesses(self, client):
        reply = client.submit(
            command={
                "argv": [sys.executable, "-c", "pass"],
                "tasks": 2,
                "task_seconds": 1.0,
            },
            deadline_minutes=30.0,
            policy="max-allocation",
        )
        info = client.wait(reply["job_id"], timeout=60.0)
        assert info["status"] == "completed"
        assert info["completed_tasks"] == 2

    def test_metrics_exposed(self, client):
        text = client.metrics_text()
        assert "repro_service_jobs_submitted_total" in text
        assert "repro_service_leases_total" in text

    def test_unknown_template_rejected(self, client):
        with pytest.raises(ServiceClientError) as err:
            client.submit(template="no-such-shape", deadline_minutes=5.0)
        assert "unknown template" in str(err.value)

    def test_unknown_tenant_rejected(self, client):
        with pytest.raises(ServiceClientError) as err:
            client.submit(
                template="tiny", deadline_minutes=5.0, tenant="nobody"
            )
        assert err.value.status == 404

    def test_submit_needs_exactly_one_mode(self, client):
        with pytest.raises(ServiceClientError):
            client.submit(deadline_minutes=5.0)

    def test_infeasible_deadline_rejected_with_reason(self, client):
        reply = client.submit(
            template="tiny", deadline_minutes=0.01, policy="jockey-no-sim"
        )
        assert reply["status"] == "rejected"
        assert reply["reason"]

    def test_unknown_job_404(self, client):
        with pytest.raises(ServiceClientError) as err:
            client.job("job-99999")
        assert err.value.status == 404

    def test_result_conflict_while_running(self, client):
        reply = client.submit(
            template="tiny", deadline_minutes=30.0, policy="jockey-no-sim"
        )
        try:
            client.result(reply["job_id"])
        except ServiceClientError as err:
            assert err.status == 409
        client.wait(reply["job_id"], timeout=60.0)


class TestWorkerLoss:
    """Kill a worker mid-run: heartbeat timeout must reschedule its tasks."""

    def test_job_survives_worker_crash(self):
        config = ServiceConfig(
            capacity_tokens=8,
            tick_seconds=10.0,
            time_scale=0.01,           # 100-virtual-second task = 1 s wall
            heartbeat_timeout=0.8,
        )
        store = tiny_store(runtime_map=100.0, runtime_reduce=50.0)
        with ClusterService(config, store=store) as svc:
            client = ServiceClient(svc.url)
            victim = ServiceWorker(
                WorkerConfig(url=svc.url, name="victim", slots=4)
            ).start()
            survivor = ServiceWorker(
                WorkerConfig(url=svc.url, name="survivor", slots=4)
            ).start()
            reply = client.submit(
                template="tiny", deadline_minutes=60.0, policy="jockey-no-sim"
            )
            job_id = reply["job_id"]

            # Wait until the victim actually holds leases, then crash it.
            deadline = time.monotonic() + 10.0
            while time.monotonic() < deadline:
                workers = {
                    w["name"]: w for w in client.state()["workers"]
                }
                if workers["victim"]["leased_tasks"] > 0:
                    break
                time.sleep(0.02)
            else:
                pytest.fail("victim never leased a task")
            victim.kill()

            info = client.wait(job_id, timeout=60.0)
            assert info["status"] == "completed"
            assert info["completed_tasks"] == info["total_tasks"]
            # The loss was detected and attributed to the job.
            assert info["workers_lost"] >= 1
            workers = {w["name"]: w for w in client.state()["workers"]}
            assert workers["victim"]["lost"] is True
            assert workers["survivor"]["lost"] is False
            # The arbiter is still healthy after the crash.
            assert client.healthz()["status"] == "ok"
            survivor.stop()

    def test_zombie_completion_rejected(self):
        """A worker that outlives its heartbeat must not report results."""
        config = ServiceConfig(
            capacity_tokens=4,
            tick_seconds=10.0,
            time_scale=0.01,
            heartbeat_timeout=0.5,
        )
        store = tiny_store(runtime_map=100.0, runtime_reduce=50.0)
        with ClusterService(config, store=store) as svc:
            client = ServiceClient(svc.url)
            registered = client.register_worker(name="zombie", slots=2)
            worker_id = registered["worker_id"]
            client.submit(
                template="tiny", deadline_minutes=60.0,
                policy="jockey-no-sim",
            )
            tasks = client.lease(worker_id, max_tasks=1)["tasks"]
            assert tasks
            # Go silent past the heartbeat timeout; the sweep runs on the
            # control tick (0.1 s wall here).
            time.sleep(1.0)
            with pytest.raises(ServiceClientError) as err:
                client.complete_task(
                    task_id=tasks[0]["task_id"], worker_id=worker_id
                )
            assert err.value.status == 409


class TestGracefulShutdown:
    def test_drain_finishes_live_jobs(self):
        config = ServiceConfig(
            capacity_tokens=8, tick_seconds=10.0, time_scale=0.002,
        )
        svc = ClusterService(config, store=tiny_store())
        svc.start()
        client = ServiceClient(svc.url)
        worker = ServiceWorker(
            WorkerConfig(url=svc.url, name="w", slots=8)
        ).start()
        reply = client.submit(
            template="tiny", deadline_minutes=30.0, policy="jockey-no-sim"
        )
        svc.stop(drain=True, timeout=30.0)
        job = svc._jobs[reply["job_id"]]
        assert job.status == "completed"
        worker.stop()

    def test_draining_service_refuses_submissions(self):
        config = ServiceConfig(capacity_tokens=4, time_scale=0.002)
        with ClusterService(config, store=tiny_store()) as svc:
            client = ServiceClient(svc.url)
            client.shutdown(drain=True)
            with pytest.raises(ServiceClientError) as err:
                client.submit(
                    template="tiny", deadline_minutes=30.0,
                    policy="jockey-no-sim",
                )
            assert err.value.status == 503


class TestLoadgenDeterminism:
    def test_same_seed_same_workload(self):
        config = LoadgenConfig(jobs=12, seed=42)
        first = generate_workload(config)
        second = generate_workload(config)
        assert first == second
        assert workload_fingerprint(first) == workload_fingerprint(second)

    def test_different_seed_different_workload(self):
        base = workload_fingerprint(generate_workload(LoadgenConfig(seed=1)))
        other = workload_fingerprint(generate_workload(LoadgenConfig(seed=2)))
        assert base != other

    def test_offsets_monotonic(self):
        plans = generate_workload(LoadgenConfig(jobs=10, seed=3))
        offsets = [p.offset_seconds for p in plans]
        assert offsets == sorted(offsets)
        assert offsets[0] == 0.0

    def test_rejects_bad_config(self):
        from repro.service.loadgen import LoadgenError

        with pytest.raises(LoadgenError):
            LoadgenConfig(jobs=0)
        with pytest.raises(LoadgenError):
            LoadgenConfig(deadline_factors=(0.5, 2.0))
        with pytest.raises(LoadgenError):
            LoadgenConfig(templates=())


class TestCliContract:
    """Exit codes and golden help text for the service verbs."""

    def run_cli(self, *argv):
        import io

        from repro.cli import main

        out = io.StringIO()
        code = main(list(argv), out=out)
        return code, out.getvalue()

    def test_serve_bad_tenant_spec_exits_two(self):
        code, text = self.run_cli("serve", "--tenant", "broken")
        assert code == 2
        assert "NAME=QUOTA" in text

    def test_serve_bad_capacity_exits_two(self):
        code, text = self.run_cli("serve", "--capacity", "0")
        assert code == 2
        assert "capacity" in text

    def test_worker_requires_url(self):
        code, _text = self.run_cli("worker")
        assert code == 2

    def test_worker_unreachable_arbiter_exits_one(self):
        code, text = self.run_cli(
            "worker", "--url", "http://127.0.0.1:9", "--name", "orphan"
        )
        assert code == 1
        assert "cannot register" in text

    def test_submit_requires_deadline(self):
        code, _text = self.run_cli("submit", "--template", "tiny")
        assert code == 2

    def test_submit_requires_exactly_one_source(self):
        code, _text = self.run_cli(
            "submit", "--deadline-minutes", "5",
            "--template", "tiny", "--command", "true",
        )
        assert code == 2

    def test_submit_unreachable_service_exits_one(self):
        code, text = self.run_cli(
            "submit", "--url", "http://127.0.0.1:9",
            "--template", "tiny", "--deadline-minutes", "5",
        )
        assert code == 1
        assert "cannot reach" in text

    def test_loadgen_bad_jobs_exits_two(self):
        code, _text = self.run_cli("loadgen", "--jobs", "0")
        assert code == 2

    def test_loadgen_unreachable_service_exits_one(self):
        code, text = self.run_cli(
            "loadgen", "--url", "http://127.0.0.1:9", "--jobs", "1"
        )
        assert code == 1
        assert "cannot reach" in text

    @pytest.mark.parametrize("verb", ["serve", "submit"])
    def test_help_matches_golden(self, verb, monkeypatch, capsys):
        monkeypatch.setenv("COLUMNS", "80")
        code, _text = self.run_cli(verb, "--help")
        assert code == 0
        got = capsys.readouterr().out
        golden = (
            pathlib.Path(__file__).parent / "golden" / f"{verb}_help.txt"
        )
        assert got == golden.read_text(encoding="utf-8"), (
            f"help text drifted; regenerate tests/golden/{verb}_help.txt "
            "(COLUMNS=80) if the change is intentional"
        )
