"""Unit tests for job profiles."""

import pytest

from repro.jobs.dag import Edge, EdgeType, JobGraph, Stage
from repro.jobs.profiles import JobProfile, ProfileError, StageProfile
from repro.jobs.trace import OUTCOME_FAILED, RunTrace, TaskRecord
from repro.simkit.distributions import Constant, Empirical


def small_graph():
    return JobGraph(
        "g",
        [Stage("map", 2), Stage("reduce", 1)],
        [Edge("map", "reduce", EdgeType.ALL_TO_ALL)],
    )


def profile_for(graph):
    return JobProfile(
        graph,
        {
            "map": StageProfile(
                "map", runtime=Constant(10.0), init=Constant(1.0),
                queue_obs=Constant(2.0),
            ),
            "reduce": StageProfile(
                "reduce", runtime=Constant(30.0), queue_obs=Constant(4.0),
            ),
        },
    )


class TestStageProfileValidation:
    def test_bad_failure_prob(self):
        with pytest.raises(ProfileError):
            StageProfile("s", runtime=Constant(1.0), failure_prob=1.0)

    def test_bad_rel_span(self):
        with pytest.raises(ProfileError):
            StageProfile("s", runtime=Constant(1.0), rel_span=(0.8, 0.2))

    def test_mean_task_cost_includes_init(self):
        sp = StageProfile("s", runtime=Constant(10.0), init=Constant(2.0))
        assert sp.mean_task_cost() == 12.0


class TestJobProfileValidation:
    def test_missing_stage_rejected(self):
        graph = small_graph()
        with pytest.raises(ProfileError, match="missing"):
            JobProfile(graph, {"map": StageProfile("map", runtime=Constant(1.0))})

    def test_extra_stage_rejected(self):
        graph = small_graph()
        stages = {
            "map": StageProfile("map", runtime=Constant(1.0)),
            "reduce": StageProfile("reduce", runtime=Constant(1.0)),
            "ghost": StageProfile("ghost", runtime=Constant(1.0)),
        }
        with pytest.raises(ProfileError, match="unknown"):
            JobProfile(graph, stages)

    def test_unknown_stage_lookup(self):
        with pytest.raises(ProfileError):
            profile_for(small_graph()).stage("nope")


class TestAggregates:
    def test_total_exec_seconds(self):
        profile = profile_for(small_graph())
        totals = profile.total_exec_seconds()
        assert totals["map"] == 22.0   # 2 tasks x (10 + 1)
        assert totals["reduce"] == 30.0

    def test_total_queue_seconds(self):
        profile = profile_for(small_graph())
        queues = profile.total_queue_seconds()
        assert queues["map"] == 4.0
        assert queues["reduce"] == 4.0

    def test_total_work(self):
        assert profile_for(small_graph()).total_work_seconds() == 52.0

    def test_longest_task_seconds(self):
        longest = profile_for(small_graph()).longest_task_seconds()
        assert longest["map"] == 11.0
        assert longest["reduce"] == 30.0

    def test_longest_path_after_excludes_own_stage(self):
        paths = profile_for(small_graph()).longest_path_after()
        assert paths["reduce"] == 0.0
        assert paths["map"] == 30.0

    def test_critical_path(self):
        assert profile_for(small_graph()).critical_path_seconds() == 41.0


class TestScaling:
    def test_runtime_scale(self):
        scaled = profile_for(small_graph()).with_runtime_scale(2.0)
        assert scaled.stage("reduce").runtime.mean() == 60.0
        # queue_obs is observed data, not behaviour — unscaled.
        assert scaled.stage("reduce").queue_obs.mean() == 4.0

    def test_with_failure_prob(self):
        adjusted = profile_for(small_graph()).with_failure_prob(0.1)
        assert adjusted.stage("map").failure_prob == 0.1


class TestFromTrace:
    def build_trace(self):
        trace = RunTrace(job_name="g", start_time=0.0)
        trace.add(TaskRecord("map", 0, 0, 0.0, 1.0, 11.0))
        trace.add(TaskRecord("map", 1, 0, 0.0, 2.0, 10.0))
        trace.add(
            TaskRecord("map", 1, 1, 0.0, 0.5, 3.0, outcome=OUTCOME_FAILED)
        )
        trace.add(TaskRecord("reduce", 0, 0, 11.0, 12.0, 40.0))
        trace.end_time = 40.0
        return trace

    def test_builds_empirical_runtimes(self):
        profile = JobProfile.from_trace(small_graph(), self.build_trace())
        runtime = profile.stage("map").runtime
        assert isinstance(runtime, Empirical)
        assert sorted(runtime.values) == [8.0, 10.0]

    def test_failure_prob_observed(self):
        profile = JobProfile.from_trace(small_graph(), self.build_trace())
        assert profile.stage("map").failure_prob == pytest.approx(1 / 3)
        assert profile.stage("reduce").failure_prob == 0.0

    def test_failure_prob_floor(self):
        profile = JobProfile.from_trace(
            small_graph(), self.build_trace(), min_failure_prob=0.01
        )
        assert profile.stage("reduce").failure_prob == 0.01

    def test_rel_spans_recorded(self):
        profile = JobProfile.from_trace(small_graph(), self.build_trace())
        span = profile.stage("reduce").rel_span
        assert span == pytest.approx((12 / 40, 1.0))

    def test_missing_stage_in_trace_rejected(self):
        trace = RunTrace(job_name="g", start_time=0.0)
        trace.add(TaskRecord("map", 0, 0, 0.0, 1.0, 11.0))
        trace.end_time = 11.0
        with pytest.raises(ProfileError, match="reduce"):
            JobProfile.from_trace(small_graph(), trace)
