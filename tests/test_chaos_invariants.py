"""Property-based stress tests: whatever a chaos schedule throws at a run,
the substrate's core invariants hold.

Each example draws a random :class:`ChaosSpec` (rack losses, storms, token
shocks, drift, control faults, and a global intensity), runs a full
simulated job under it, and checks:

* token grants are never negative and never exceed pool capacity;
* guaranteed entitlements are never displaced by spare work — nobody
  receives spare tokens while any consumer's guaranteed demand is unmet;
* every started task terminates and every vertex completes exactly once;
* simulated time is monotone non-decreasing.
"""

import dataclasses

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.chaos import ChaosEngine, ChaosError, ChaosSpec
from repro.chaos.spec import (
    ControlFaults,
    EvictionStorm,
    ProfileDrift,
    RackFailure,
    TokenShock,
    spec_from_dict,
    spec_to_dict,
)
from repro.cluster import Cluster, ClusterConfig
from repro.jobs.workloads import random_job
from repro.runtime.jobmanager import JobManager, run_to_completion
from repro.simkit.events import Simulator
from repro.simkit.random import RngRegistry


# ----------------------------------------------------------------------
# Spec strategies
# ----------------------------------------------------------------------


@st.composite
def rack_failures(draw):
    return RackFailure(
        at=draw(st.floats(0.0, 1200.0)),
        count=draw(st.integers(0, 8)),
        repair_seconds=draw(st.floats(60.0, 600.0)),
    )


@st.composite
def eviction_storms(draw):
    start = draw(st.floats(0.0, 1200.0))
    return EvictionStorm(
        start=start,
        end=start + draw(st.floats(0.0, 900.0)),
        demand_fraction=draw(st.floats(0.0, 1.0)),
    )


@st.composite
def token_shocks(draw):
    start = draw(st.floats(0.0, 1200.0))
    return TokenShock(
        start=start,
        end=start + draw(st.floats(0.0, 900.0)),
        guaranteed_fraction=draw(st.floats(0.0, 1.0)),
    )


@st.composite
def profile_drifts(draw):
    return ProfileDrift(
        at=draw(st.floats(0.0, 1200.0)),
        factor=draw(st.floats(0.5, 2.0)),
    )


@st.composite
def control_faults(draw):
    blackouts = []
    for _ in range(draw(st.integers(0, 2))):
        start = draw(st.floats(0.0, 1200.0))
        blackouts.append((start, start + draw(st.floats(0.0, 900.0))))
    return ControlFaults(
        drop_tick_prob=draw(st.floats(0.0, 0.5)),
        delay_tick_prob=draw(st.floats(0.0, 0.5)),
        delay_seconds=draw(st.floats(0.0, 60.0)),
        blackouts=tuple(blackouts),
    )


@st.composite
def chaos_specs(draw):
    return ChaosSpec(
        name="prop",
        intensity=draw(st.floats(0.0, 2.0)),
        rack_failures=tuple(draw(st.lists(rack_failures(), max_size=2))),
        eviction_storms=tuple(draw(st.lists(eviction_storms(), max_size=2))),
        token_shocks=tuple(draw(st.lists(token_shocks(), max_size=2))),
        profile_drifts=tuple(draw(st.lists(profile_drifts(), max_size=2))),
        control_faults=draw(control_faults()),
    )


# ----------------------------------------------------------------------
# Full-run invariants
# ----------------------------------------------------------------------


def _run_under_chaos(spec, seed):
    """One small job end-to-end under ``spec``, sampling pool state."""
    generated = random_job(f"chaos{seed}", seed=seed, num_vertices=40)
    sim = Simulator()
    cluster = Cluster(sim, ClusterConfig(), rng=RngRegistry(seed))
    manager = JobManager(
        cluster,
        generated.graph,
        generated.profile,
        initial_allocation=20,
        rng=RngRegistry(seed).stream("chaos-prop"),
        deadline=3600.0,
        allocation_retry=True,
    )
    engine = ChaosEngine(
        spec, sim=sim, cluster=cluster, manager=manager, seed=seed
    )
    engine.install()
    samples = []

    def sample():
        pool = cluster.pool
        samples.append((
            sim.now,
            pool.capacity,
            [
                (c.name, c.guaranteed, c.demand,
                 c.grant.total, c.grant.guaranteed_part)
                for c in pool._consumers.values()
            ],
        ))

    sim.schedule_every(30.0, sample)
    trace = run_to_completion(manager, max_seconds=6 * 3600.0)
    return generated, manager, trace, samples


class TestChaosRunInvariants:
    @given(spec=chaos_specs(), seed=st.integers(0, 10_000))
    @settings(max_examples=15, deadline=None)
    def test_full_run_invariants(self, spec, seed):
        generated, manager, trace, samples = _run_under_chaos(spec, seed)

        # The job finished; every vertex completed exactly once.
        assert manager.finished
        ok = [(r.stage, r.index) for r in trace.successful_records()]
        assert len(ok) == generated.graph.num_vertices
        assert len(set(ok)) == generated.graph.num_vertices

        # Every started task terminated inside the simulation.
        for record in trace.records:
            assert record.end_time >= record.start_time >= 0
            assert record.outcome in ("ok", "evicted", "failed")

        # Simulated time is monotone non-decreasing.
        times = [t for t, _cap, _grants in samples]
        assert all(b >= a for a, b in zip(times, times[1:]))

        # Token accounting: grants non-negative, capacity respected, and
        # spare tokens only flow once guaranteed demand is fully served.
        for _t, capacity, grants in samples:
            total_granted = 0
            base_unmet = False
            spare_granted = False
            for _name, guaranteed, demand, total, guaranteed_part in grants:
                assert total >= 0
                assert 0 <= guaranteed_part <= total
                assert guaranteed_part <= guaranteed
                total_granted += total
                if guaranteed_part < min(guaranteed, demand):
                    base_unmet = True
                if total > guaranteed_part:
                    spare_granted = True
            assert total_granted <= capacity
            # "Guaranteed work is never evicted for spare work": spare is
            # handed out only when every guarantee (up to demand) is met.
            assert not (base_unmet and spare_granted)

    @given(spec=chaos_specs())
    @settings(max_examples=50, deadline=None)
    def test_intensity_zero_is_noop(self, spec):
        calm = dataclasses.replace(spec, intensity=0.0)
        assert calm.is_noop()

    @given(spec=chaos_specs())
    @settings(max_examples=50, deadline=None)
    def test_json_round_trip_exact(self, spec):
        assert spec_from_dict(spec_to_dict(spec)) == spec

    @given(spec=chaos_specs(), intensity=st.floats(0.0, 3.0))
    @settings(max_examples=50, deadline=None)
    def test_effective_preserves_field_ranges(self, spec, intensity):
        """Folding any intensity never produces an invalid spec (the
        dataclass validators run on construction, so this is mostly a
        does-not-raise property) and is idempotent at 1."""
        scaled = dataclasses.replace(spec, intensity=intensity)
        eff = scaled.effective()
        assert eff.intensity == 1.0
        assert eff.effective() == eff


class TestValidation:
    def test_unknown_machine_named(self):
        spec = ChaosSpec(rack_failures=(RackFailure(at=0.0, machines=(999,)),))
        try:
            spec.validate(num_machines=100)
        except ChaosError as exc:
            assert "999" in str(exc)
        else:
            raise AssertionError("expected ChaosError")

    def test_unknown_stage_named(self):
        spec = ChaosSpec(
            profile_drifts=(ProfileDrift(at=0.0, stages=("nope",)),)
        )
        try:
            spec.validate(stage_names=["s00", "s01"])
        except ChaosError as exc:
            assert "nope" in str(exc)
        else:
            raise AssertionError("expected ChaosError")

    def test_valid_spec_passes(self):
        spec = ChaosSpec(
            rack_failures=(RackFailure(at=0.0, machines=(0, 1)),),
            profile_drifts=(ProfileDrift(at=0.0, stages=("s00",)),),
        )
        spec.validate(num_machines=2, stage_names=["s00"])
