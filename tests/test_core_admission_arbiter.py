"""Unit tests for admission control and the global arbiter."""

import numpy as np
import pytest

from repro.core.admission import (
    AdmissionController,
    AdmissionError,
    SloRequest,
)
from repro.core.arbiter import ArbiterError, ArbiterJob, arbitrate
from repro.core.cpa import CpaTable
from repro.core.progress import totalwork
from repro.core.utility import deadline_utility
from tests.test_core_simulator import deterministic_profile


@pytest.fixture(scope="module")
def table():
    profile = deterministic_profile()  # ~70s serial, ~15s wide
    return CpaTable.build(
        profile, totalwork(profile), np.random.default_rng(0),
        allocations=(1, 2, 4, 8), reps=3, num_bins=20, sample_dt=2.0,
    )


def request(name, deadline, table, **kwargs):
    return SloRequest(name=name, table=table, deadline_seconds=deadline, **kwargs)


class TestSloRequest:
    def test_min_allocation_loose_deadline(self, table):
        assert request("j", 200.0, table).min_allocation(slack=1.0) == 1

    def test_min_allocation_tight_deadline(self, table):
        minimum = request("j", 30.0, table).min_allocation(slack=1.0, q=0.95)
        assert minimum in (4, 8)

    def test_min_allocation_infeasible(self, table):
        assert request("j", 5.0, table).min_allocation() is None

    def test_elapsed_shrinks_budget(self, table):
        fresh = request("j", 80.0, table).min_allocation(slack=1.0, q=0.95)
        started = request(
            "j", 80.0, table, elapsed_seconds=50.0
        ).min_allocation(slack=1.0, q=0.95)
        assert started > fresh

    def test_validation(self, table):
        with pytest.raises(AdmissionError):
            request("j", -1.0, table)
        with pytest.raises(AdmissionError):
            request("j", 10.0, table, progress=2.0)


class TestAdmissionController:
    def test_admits_when_fits(self, table):
        controller = AdmissionController(10, slack=1.0, q=0.95)
        decision = controller.admit(request("a", 200.0, table))
        assert decision.admitted
        assert decision.reservations["a"] == 1

    def test_rejects_when_over_capacity(self, table):
        controller = AdmissionController(5, slack=1.0, q=0.95)
        assert controller.admit(request("a", 30.0, table)).admitted
        decision = controller.evaluate(request("b", 30.0, table))
        assert not decision.admitted
        assert "guaranteed tokens" in decision.reason

    def test_rejects_infeasible_job(self, table):
        controller = AdmissionController(100)
        decision = controller.evaluate(request("a", 5.0, table))
        assert not decision.admitted
        assert "cannot meet" in decision.reason

    def test_evaluate_does_not_admit(self, table):
        controller = AdmissionController(10, slack=1.0, q=0.95)
        controller.evaluate(request("a", 200.0, table))
        assert controller.admitted_jobs == []

    def test_release_frees_capacity(self, table):
        controller = AdmissionController(5, slack=1.0, q=0.95)
        controller.admit(request("a", 30.0, table))
        controller.release("a")
        assert controller.admit(request("b", 30.0, table)).admitted

    def test_release_unknown(self, table):
        with pytest.raises(AdmissionError):
            AdmissionController(5).release("ghost")

    def test_duplicate_names_rejected(self, table):
        controller = AdmissionController(100, slack=1.0, q=0.95)
        controller.admit(request("a", 200.0, table))
        with pytest.raises(AdmissionError):
            controller.evaluate(request("a", 200.0, table))

    def test_bad_capacity(self):
        with pytest.raises(AdmissionError):
            AdmissionController(0)


class LinearJob:
    """Predictor stub: remaining = work / allocation."""

    name = "stub"

    def __init__(self, work):
        self.work = work

    def remaining_seconds(self, fractions, allocation):
        return self.work / allocation


def arbiter_job(name, work, deadline, elapsed=0.0):
    return ArbiterJob(
        name=name,
        predictor=LinearJob(work),
        utility=deadline_utility(deadline),
        fractions={},
        elapsed_seconds=elapsed,
        slack=1.0,
    )


class TestArbiter:
    def test_budget_respected(self):
        jobs = [arbiter_job("a", 10_000.0, 3600.0), arbiter_job("b", 10_000.0, 3600.0)]
        allocations = arbitrate(jobs, 40, step=1)
        assert sum(allocations.values()) <= 40

    def test_tight_job_gets_more(self):
        tight = arbiter_job("tight", 50_000.0, 1000.0)
        slack = arbiter_job("slack", 50_000.0, 10_000.0)
        allocations = arbitrate([tight, slack], 70, step=5)
        assert allocations["tight"] > allocations["slack"]

    def test_both_meet_when_possible(self):
        a = arbiter_job("a", 30_000.0, 2000.0)   # needs 15
        b = arbiter_job("b", 60_000.0, 2000.0)   # needs 30
        allocations = arbitrate([a, b], 60, step=1)
        assert 30_000.0 / allocations["a"] <= 2000.0
        assert 60_000.0 / allocations["b"] <= 2000.0

    def test_no_gain_stops_early(self):
        jobs = [arbiter_job("a", 100.0, 36_000.0)]  # trivially satisfied
        allocations = arbitrate(jobs, 100, step=5)
        assert allocations["a"] < 100

    def test_empty(self):
        assert arbitrate([], 10) == {}

    def test_errors(self):
        jobs = [arbiter_job("a", 1.0, 10.0), arbiter_job("a", 1.0, 10.0)]
        with pytest.raises(ArbiterError):
            arbitrate(jobs, 10)
        with pytest.raises(ArbiterError):
            arbitrate([arbiter_job("a", 1.0, 10.0)], 0)
        with pytest.raises(ArbiterError):
            arbitrate([arbiter_job("a", 1.0, 10.0)], 10, step=0)
