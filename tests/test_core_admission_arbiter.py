"""Unit tests for admission control and the global arbiter."""

import numpy as np
import pytest

from repro.core.admission import (
    AdmissionController,
    AdmissionError,
    SloRequest,
)
from repro.core.arbiter import ArbiterError, ArbiterJob, arbitrate
from repro.core.cpa import CpaTable
from repro.core.progress import totalwork
from repro.core.utility import deadline_utility
from tests.test_core_simulator import deterministic_profile


@pytest.fixture(scope="module")
def table():
    profile = deterministic_profile()  # ~70s serial, ~15s wide
    return CpaTable.build(
        profile, totalwork(profile), np.random.default_rng(0),
        allocations=(1, 2, 4, 8), reps=3, num_bins=20, sample_dt=2.0,
    )


def request(name, deadline, table, **kwargs):
    return SloRequest(name=name, table=table, deadline_seconds=deadline, **kwargs)


class TestSloRequest:
    def test_min_allocation_loose_deadline(self, table):
        assert request("j", 200.0, table).min_allocation(slack=1.0) == 1

    def test_min_allocation_tight_deadline(self, table):
        minimum = request("j", 30.0, table).min_allocation(slack=1.0, q=0.95)
        assert minimum in (4, 8)

    def test_min_allocation_infeasible(self, table):
        assert request("j", 5.0, table).min_allocation() is None

    def test_elapsed_shrinks_budget(self, table):
        fresh = request("j", 80.0, table).min_allocation(slack=1.0, q=0.95)
        started = request(
            "j", 80.0, table, elapsed_seconds=50.0
        ).min_allocation(slack=1.0, q=0.95)
        assert started > fresh

    def test_validation(self, table):
        with pytest.raises(AdmissionError):
            request("j", -1.0, table)
        with pytest.raises(AdmissionError):
            request("j", 10.0, table, progress=2.0)


class TestAdmissionController:
    def test_admits_when_fits(self, table):
        controller = AdmissionController(10, slack=1.0, q=0.95)
        decision = controller.admit(request("a", 200.0, table))
        assert decision.admitted
        assert decision.reservations["a"] == 1

    def test_rejects_when_over_capacity(self, table):
        controller = AdmissionController(5, slack=1.0, q=0.95)
        assert controller.admit(request("a", 30.0, table)).admitted
        decision = controller.evaluate(request("b", 30.0, table))
        assert not decision.admitted
        assert "guaranteed tokens" in decision.reason

    def test_rejects_infeasible_job(self, table):
        controller = AdmissionController(100)
        decision = controller.evaluate(request("a", 5.0, table))
        assert not decision.admitted
        assert "cannot meet" in decision.reason

    def test_evaluate_does_not_admit(self, table):
        controller = AdmissionController(10, slack=1.0, q=0.95)
        controller.evaluate(request("a", 200.0, table))
        assert controller.admitted_jobs == []

    def test_release_frees_capacity(self, table):
        controller = AdmissionController(5, slack=1.0, q=0.95)
        controller.admit(request("a", 30.0, table))
        controller.release("a")
        assert controller.admit(request("b", 30.0, table)).admitted

    def test_release_unknown(self, table):
        with pytest.raises(AdmissionError):
            AdmissionController(5).release("ghost")

    def test_duplicate_names_rejected(self, table):
        controller = AdmissionController(100, slack=1.0, q=0.95)
        controller.admit(request("a", 200.0, table))
        with pytest.raises(AdmissionError):
            controller.evaluate(request("a", 200.0, table))

    def test_bad_capacity(self):
        with pytest.raises(AdmissionError):
            AdmissionController(0)


class LinearJob:
    """Predictor stub: remaining = work / allocation."""

    name = "stub"

    def __init__(self, work):
        self.work = work

    def remaining_seconds(self, fractions, allocation):
        return self.work / allocation


def arbiter_job(name, work, deadline, elapsed=0.0):
    return ArbiterJob(
        name=name,
        predictor=LinearJob(work),
        utility=deadline_utility(deadline),
        fractions={},
        elapsed_seconds=elapsed,
        slack=1.0,
    )


class TestArbiter:
    def test_budget_respected(self):
        jobs = [arbiter_job("a", 10_000.0, 3600.0), arbiter_job("b", 10_000.0, 3600.0)]
        allocations = arbitrate(jobs, 40, step=1)
        assert sum(allocations.values()) <= 40

    def test_tight_job_gets_more(self):
        tight = arbiter_job("tight", 50_000.0, 1000.0)
        slack = arbiter_job("slack", 50_000.0, 10_000.0)
        allocations = arbitrate([tight, slack], 70, step=5)
        assert allocations["tight"] > allocations["slack"]

    def test_both_meet_when_possible(self):
        a = arbiter_job("a", 30_000.0, 2000.0)   # needs 15
        b = arbiter_job("b", 60_000.0, 2000.0)   # needs 30
        allocations = arbitrate([a, b], 60, step=1)
        assert 30_000.0 / allocations["a"] <= 2000.0
        assert 60_000.0 / allocations["b"] <= 2000.0

    def test_no_gain_stops_early(self):
        jobs = [arbiter_job("a", 100.0, 36_000.0)]  # trivially satisfied
        allocations = arbitrate(jobs, 100, step=5)
        assert allocations["a"] < 100

    def test_empty(self):
        assert arbitrate([], 10) == {}

    def test_errors(self):
        jobs = [arbiter_job("a", 1.0, 10.0), arbiter_job("a", 1.0, 10.0)]
        with pytest.raises(ArbiterError):
            arbitrate(jobs, 10)
        with pytest.raises(ArbiterError):
            arbitrate([arbiter_job("a", 1.0, 10.0)], 0)
        with pytest.raises(ArbiterError):
            arbitrate([arbiter_job("a", 1.0, 10.0)], 10, step=0)


# ----------------------------------------------------------------------
# Market-layer edge cases (the batched arbiter and quota admission)
# ----------------------------------------------------------------------


class TestMarketArbiterEdges:
    def test_zero_token_budget_prices_best_unserved_bid(self):
        """Supply 0 with live demand grants nothing; the price reports
        what the market would bear."""
        from repro.market.arbiter import Bid, MarketArbiter

        bids = [
            Bid(job="a", tenant="t", marginals=(5.0, 2.0)),
            Bid(job="b", tenant="t", marginals=(9.0,)),
        ]
        clearing = MarketArbiter().clear(bids, 0)
        assert clearing.grants == {}
        assert clearing.price == 9.0
        assert clearing.demand == 3

    def test_zero_budget_zero_demand(self):
        from repro.market.arbiter import Bid, MarketArbiter

        clearing = MarketArbiter().clear(
            [Bid(job="a", tenant="t", marginals=())], 0
        )
        assert clearing.grants == {}
        assert clearing.price == 0.0

    def test_single_job_market(self):
        """One bidder takes its whole schedule; with supply to spare the
        price is 0 (nobody competes)."""
        from repro.market.arbiter import Bid, MarketArbiter

        clearing = MarketArbiter().clear(
            [Bid(job="only", tenant="t", marginals=(4.0, 3.0, 1.0))], 10
        )
        assert clearing.grants == {"only": 3}
        assert clearing.price == 0.0
        assert clearing.value == 8.0

    def test_exact_tie_broken_by_job_name(self):
        """Equal marginal values go to the lexicographically smaller job
        name, regardless of bid order."""
        from repro.market.arbiter import Bid, MarketArbiter

        bids = [
            Bid(job="zeta", tenant="t", marginals=(7.0,)),
            Bid(job="alpha", tenant="t", marginals=(7.0,)),
        ]
        clearing = MarketArbiter().clear(bids, 1)
        assert clearing.grants == {"alpha": 1}
        reversed_clearing = MarketArbiter().clear(bids[::-1], 1)
        assert reversed_clearing.grants == {"alpha": 1}

    def test_tie_across_schedules_grants_prefixes(self):
        from repro.market.arbiter import Bid, MarketArbiter

        bids = [
            Bid(job="b", tenant="t", marginals=(7.0, 7.0)),
            Bid(job="a", tenant="t", marginals=(7.0, 7.0)),
        ]
        clearing = MarketArbiter().clear(bids, 3)
        assert clearing.grants == {"a": 2, "b": 1}

    def test_non_increasing_schedule_enforced(self):
        from repro.market.arbiter import Bid
        from repro.market.tenant import MarketError

        with pytest.raises(MarketError, match="non-increasing"):
            Bid(job="a", tenant="t", marginals=(1.0, 2.0))


class TestMarketAdmissionEdges:
    @staticmethod
    def _tenant(name="t", quota=10):
        from repro.market.tenant import Tenant

        return Tenant(name=name, quota=quota)

    @staticmethod
    def _spec(name, work, width, deadline, tenant="t", submit=0.0):
        from repro.market.tenant import JobSpec

        return JobSpec(
            name=name, tenant=tenant, work=work, width=width,
            deadline_seconds=deadline, submit_seconds=submit,
        )

    def test_zero_deadline_budget_rejected(self):
        """A job whose deadline already passed while queued is rejected
        as deadline_passed, not admitted at any guarantee."""
        from repro.market.admission import MarketAdmission

        tenant = self._tenant()
        tenant.queue.append(self._spec("late", 100.0, 4, 60.0))
        admission = MarketAdmission()
        admitted = admission.tick({"t": tenant}, now=60.0)
        assert admitted == []
        assert tenant.rejected_reasons == {"deadline_passed": 1}

    def test_over_subscribed_admission_is_fifo(self):
        """When the quota cannot host every queued job at once, earlier
        submissions win and later ones wait (no reordering)."""
        from repro.market.admission import MarketAdmission

        tenant = self._tenant(quota=10)
        # Each needs 6 tokens: only one fits at a time.
        for i in range(3):
            tenant.queue.append(
                self._spec(f"j{i}", work=4320.0, width=8, deadline=720.0)
            )
        admission = MarketAdmission(slack=1.0)
        admitted = admission.tick({"t": tenant}, now=0.0)
        assert [j.name for j in admitted] == ["j0"]
        assert [s.name for s in tenant.queue] == ["j1", "j2"]
        assert admission.stats.queue_waits == 2

    def test_admission_order_deterministic_across_tenants(self):
        """Tenants are visited in sorted-name order regardless of dict
        insertion order."""
        from repro.market.admission import MarketAdmission

        beta = self._tenant("beta")
        alpha = self._tenant("alpha")
        beta.queue.append(
            self._spec("jb", 60.0, 4, 600.0, tenant="beta")
        )
        alpha.queue.append(
            self._spec("ja", 60.0, 4, 600.0, tenant="alpha")
        )
        admission = MarketAdmission()
        admitted = admission.tick({"beta": beta, "alpha": alpha}, now=0.0)
        assert [j.name for j in admitted] == ["ja", "jb"]

    def test_guarantee_wider_than_quota_rejected_outright(self):
        from repro.market.admission import MarketAdmission

        tenant = self._tenant(quota=2)
        tenant.queue.append(
            self._spec("big", work=3600.0, width=8, deadline=720.0)
        )
        admission = MarketAdmission(slack=1.0)
        assert admission.tick({"t": tenant}, now=0.0) == []
        assert tenant.rejected_reasons == {"exceeds_quota": 1}

    def test_single_job_market_runs_to_completion(self):
        """The smallest possible market: one tenant, one job, enough
        tokens — the job is admitted, drains, and meets its deadline."""
        from repro.market.engine import MarketConfig, TokenMarket
        from repro.market.tenant import JobSpec, Tenant

        tenants = [Tenant(name="t", quota=8)]
        jobs = [JobSpec(
            name="solo", tenant="t", work=600.0, width=8,
            deadline_seconds=600.0,
        )]
        result = TokenMarket(
            tenants, jobs, MarketConfig(capacity=8, tick_seconds=60.0)
        ).run()
        assert result.submitted == 1
        assert result.met == 1
        assert result.attainment == 1.0
        assert len(result.completions) == 1
        assert result.completions[0]["met"] is True
