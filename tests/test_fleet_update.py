"""Tests for the online-learning layer: update policies and the drift
detector.

Update policies must be deterministic functions of the lineage (no RNG in
the blend), weight newer generations at least as much as older ones, and
respect the pooled-sample cap.  The drift detector must stay quiet on
run-to-run noise and fire on a genuine multiplicative drift.
"""

import math

import pytest

from repro.fleet.store import FleetError
from repro.fleet.update import (
    DriftConfig,
    UpdateConfig,
    _quantile_subsample,
    detect_drift,
    ks_statistic,
    resolve_profile,
)
from repro.jobs.dag import Edge, EdgeType, JobGraph, Stage
from repro.jobs.profiles import JobProfile, StageProfile
from repro.simkit.distributions import Constant, Empirical


def graph():
    return JobGraph(
        "g",
        [Stage("map", 4), Stage("reduce", 2)],
        [Edge("map", "reduce", EdgeType.ALL_TO_ALL)],
    )


def make_profile(g, map_values, reduce_values=None):
    reduce_values = reduce_values or [30.0 + 0.5 * i for i in range(16)]
    return JobProfile(
        g,
        {
            "map": StageProfile(
                "map",
                runtime=Empirical(map_values),
                queue_obs=Constant(2.0),
                failure_prob=0.01,
            ),
            "reduce": StageProfile(
                "reduce",
                runtime=Empirical(reduce_values),
                queue_obs=Constant(4.0),
                failure_prob=0.02,
            ),
        },
    )


def spread(center, n=32, width=0.2):
    """n samples evenly spread in center * (1 +/- width)."""
    return [
        center * (1.0 - width + 2.0 * width * i / (n - 1)) for i in range(n)
    ]


class TestQuantileSubsample:
    def test_keeps_extremes_and_count(self):
        values = list(range(100))
        out = _quantile_subsample(values, 10)
        assert len(out) == 10
        assert out[0] == 0 and out[-1] == 99
        assert out == sorted(out)

    def test_full_when_count_covers(self):
        assert _quantile_subsample([3.0, 1.0, 2.0], 5) == [1.0, 2.0, 3.0]

    def test_single_is_median(self):
        assert _quantile_subsample(list(range(11)), 1) == [5]


class TestUpdateConfigValidation:
    def test_unknown_policy(self):
        with pytest.raises(FleetError, match="unknown update policy"):
            UpdateConfig(policy="psychic")

    def test_bad_window(self):
        with pytest.raises(FleetError, match="window"):
            UpdateConfig(window=0)

    def test_bad_alpha(self):
        with pytest.raises(FleetError, match="ewma_alpha"):
            UpdateConfig(ewma_alpha=0.0)


class TestResolveProfile:
    def test_empty_lineage_raises(self):
        with pytest.raises(FleetError, match="empty lineage"):
            resolve_profile(UpdateConfig(), [])

    def test_latest_returns_newest_verbatim(self):
        g = graph()
        old = make_profile(g, spread(10.0))
        new = make_profile(g, spread(20.0))
        assert resolve_profile(UpdateConfig(policy="latest"), [old, new]) is new

    def test_single_generation_short_circuits(self):
        g = graph()
        only = make_profile(g, spread(10.0))
        assert resolve_profile(UpdateConfig(policy="ewma"), [only]) is only

    def test_window_blend_is_equal_weight(self):
        g = graph()
        lineage = [make_profile(g, spread(10.0)), make_profile(g, spread(20.0))]
        blended = resolve_profile(UpdateConfig(policy="window"), lineage)
        assert blended.stage("map").runtime.mean() == pytest.approx(
            15.0, rel=0.05
        )

    def test_ewma_weights_newest_more(self):
        g = graph()
        lineage = [make_profile(g, spread(10.0)), make_profile(g, spread(20.0))]
        blended = resolve_profile(
            UpdateConfig(policy="ewma", ewma_alpha=0.5), lineage
        )
        # Weights 1/3 vs 2/3: the blend sits between the window midpoint
        # and the newest generation.
        mean = blended.stage("map").runtime.mean()
        assert 15.5 < mean < 19.5

    def test_window_drops_old_generations(self):
        g = graph()
        lineage = [
            make_profile(g, spread(100.0)),
            make_profile(g, spread(10.0)),
            make_profile(g, spread(10.0)),
        ]
        blended = resolve_profile(
            UpdateConfig(policy="window", window=2), lineage
        )
        assert blended.stage("map").runtime.mean() == pytest.approx(
            10.0, rel=0.05
        )

    def test_max_samples_caps_pool(self):
        g = graph()
        lineage = [
            make_profile(g, spread(10.0, n=400)),
            make_profile(g, spread(20.0, n=400)),
        ]
        blended = resolve_profile(
            UpdateConfig(policy="window", max_samples=64), lineage
        )
        assert len(blended.stage("map").runtime.values) <= 64

    def test_failure_prob_blends(self):
        g = graph()
        lineage = [make_profile(g, spread(10.0)), make_profile(g, spread(10.0))]
        blended = resolve_profile(UpdateConfig(policy="window"), lineage)
        assert blended.stage("map").failure_prob == pytest.approx(0.01)

    def test_deterministic_for_fixed_lineage(self):
        g = graph()
        lineage = [make_profile(g, spread(10.0)), make_profile(g, spread(14.0))]
        config = UpdateConfig(policy="ewma")
        a = resolve_profile(config, lineage)
        b = resolve_profile(config, lineage)
        assert list(a.stage("map").runtime.values) == list(
            b.stage("map").runtime.values
        )


class TestKsStatistic:
    def test_identical_samples_zero(self):
        xs = spread(10.0)
        assert ks_statistic(xs, xs) == 0.0

    def test_disjoint_samples_one(self):
        assert ks_statistic([1.0, 2.0, 3.0], [10.0, 11.0]) == 1.0


class TestDriftConfigValidation:
    def test_unknown_mode(self):
        with pytest.raises(FleetError, match="unknown drift mode"):
            DriftConfig(mode="vibes")

    def test_bad_threshold(self):
        with pytest.raises(FleetError, match="mean_shift_threshold"):
            DriftConfig(mean_shift_threshold=0.0)


class TestDetectDrift:
    def test_mismatched_stages_raise(self):
        g = graph()
        other = JobGraph("h", [Stage("solo", 3)], [])
        solo = JobProfile(
            other, {"solo": StageProfile("solo", runtime=Constant(5.0))}
        )
        with pytest.raises(FleetError, match="matching stage sets"):
            detect_drift(make_profile(g, spread(10.0)), solo)

    def test_identical_profiles_insignificant(self):
        g = graph()
        p = make_profile(g, spread(10.0))
        report = detect_drift(p, p)
        assert not report.significant
        assert report.work_ratio == pytest.approx(1.0)
        assert report.max_statistic == 0.0

    def test_small_jitter_insignificant(self):
        g = graph()
        ref = make_profile(g, spread(10.0))
        obs = make_profile(g, spread(11.0))  # 10% shift: inside noise band
        report = detect_drift(ref, obs)
        assert not report.significant

    def test_global_scale_drift_significant(self):
        g = graph()
        ref = make_profile(g, spread(10.0), spread(30.0))
        obs = make_profile(g, spread(16.0), spread(48.0))  # 1.6x everywhere
        report = detect_drift(ref, obs)
        assert report.significant
        assert report.work_ratio == pytest.approx(1.6, rel=0.01)
        assert report.work_shift == pytest.approx(0.6, rel=0.01)
        assert report.worst_stage() is not None
        assert report.drifted_stages()  # per-stage evidence corroborates

    def test_mean_mode_uses_work_ratio_only(self):
        g = graph()
        ref = make_profile(g, spread(10.0), spread(30.0))
        obs = make_profile(g, spread(16.0), spread(48.0))
        report = detect_drift(ref, obs, DriftConfig(mode="mean"))
        assert report.significant
        assert report.mode == "mean"

    def test_ks_mode_needs_stage_votes(self):
        g = graph()
        ref = make_profile(g, spread(10.0), spread(30.0))
        obs = make_profile(g, spread(16.0), spread(48.0))
        report = detect_drift(ref, obs, DriftConfig(mode="ks"))
        assert report.significant
        assert report.ks_trip_fraction == 1.0

    def test_tiny_stages_are_ks_ineligible(self):
        g = JobGraph("tiny", [Stage("s", 1)], [])
        ref = JobProfile(
            g, {"s": StageProfile("s", runtime=Empirical([10.0, 11.0]))}
        )
        obs = JobProfile(
            g, {"s": StageProfile("s", runtime=Empirical([30.0, 31.0]))}
        )
        report = detect_drift(ref, obs, DriftConfig(mode="ks"))
        # No eligible stage: the KS vote cannot pass, however large the
        # shift looks at n=2.
        assert not report.significant
        assert math.isinf(report.stages[0].ks_threshold)
        assert not report.stages[0].significant

    def test_parametric_profiles_fall_back_to_means(self):
        g = JobGraph("param", [Stage("s", 4)], [])
        ref = JobProfile(g, {"s": StageProfile("s", runtime=Constant(10.0))})
        obs = JobProfile(g, {"s": StageProfile("s", runtime=Constant(16.0))})
        report = detect_drift(ref, obs, DriftConfig(mode="mean"))
        assert report.significant
        assert report.work_ratio == pytest.approx(1.6)
