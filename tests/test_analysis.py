"""Unit tests for trace analysis."""

import pytest

from repro.analysis import (
    AnalysisError,
    critical_path_tasks,
    stage_gantt,
    summarize_trace,
    utilization_timeline,
)
from repro.jobs.dag import Edge, EdgeType, JobGraph, Stage
from repro.jobs.trace import OUTCOME_FAILED, RunTrace, TaskRecord


def simple_graph():
    return JobGraph(
        "g",
        [Stage("map", 2), Stage("reduce", 1)],
        [Edge("map", "reduce", EdgeType.ALL_TO_ALL)],
    )


def simple_trace():
    """map[0]: 0-10, map[1]: 0-30 (the straggler), reduce[0]: 31-40."""
    trace = RunTrace(job_name="g", start_time=0.0, deadline=60.0)
    trace.mark_allocation(0.0, 5)
    trace.add(TaskRecord("map", 0, 0, 0.0, 0.0, 10.0))
    trace.add(TaskRecord("map", 1, 0, 0.0, 0.0, 30.0))
    trace.add(TaskRecord("reduce", 0, 0, 30.0, 31.0, 40.0))
    trace.end_time = 40.0
    return trace


class TestUtilizationTimeline:
    def test_mean_concurrency_per_bucket(self):
        timeline = utilization_timeline(simple_trace(), bucket_seconds=10.0)
        by_bucket = dict(timeline)
        assert by_bucket[0.0] == pytest.approx(2.0)   # both maps
        assert by_bucket[10.0] == pytest.approx(1.0)  # straggler only
        assert by_bucket[30.0] == pytest.approx(0.9)  # reduce from t=31

    def test_unfinished_rejected(self):
        with pytest.raises(AnalysisError):
            utilization_timeline(RunTrace(job_name="g"))

    def test_bad_bucket(self):
        with pytest.raises(AnalysisError):
            utilization_timeline(simple_trace(), bucket_seconds=0.0)


class TestStageGantt:
    def test_rows_and_occupancy(self):
        text = stage_gantt(simple_trace(), width=40)
        lines = text.splitlines()
        assert len(lines) == 2
        map_row, reduce_row = lines
        assert map_row.startswith("map")
        # map occupies the first ~75% of the run; reduce the last ~25%.
        assert map_row.count("█") > reduce_row.count("█")
        assert reduce_row.rstrip("|").endswith("█")

    def test_unfinished_rejected(self):
        with pytest.raises(AnalysisError):
            stage_gantt(RunTrace(job_name="g"))


class TestCriticalPath:
    def test_walks_through_straggler(self):
        chain = critical_path_tasks(simple_trace(), simple_graph())
        assert [(l.stage, l.index) for l in chain] == [
            ("map", 1),
            ("reduce", 0),
        ]

    def test_queue_time_captured(self):
        chain = critical_path_tasks(simple_trace(), simple_graph())
        assert chain[-1].queue_seconds == pytest.approx(1.0)

    def test_failed_attempts_ignored(self):
        trace = simple_trace()
        trace.records.insert(
            0, TaskRecord("map", 1, 0, 0.0, 0.0, 35.0, outcome=OUTCOME_FAILED)
        )
        chain = critical_path_tasks(trace, simple_graph())
        assert chain[0].end_time == 30.0

    def test_empty_trace_rejected(self):
        trace = RunTrace(job_name="g")
        trace.end_time = 1.0
        with pytest.raises(AnalysisError):
            critical_path_tasks(trace, simple_graph())

    def test_on_real_run(self):
        """End-to-end: the realized critical path of a substrate run ends
        at the job's last-finishing task."""
        from repro.runtime.jobmanager import JobManager, run_to_completion
        from repro.simkit.events import Simulator
        from repro.jobs.workloads import mapreduce_job
        from tests.test_runtime_jobmanager import quiet_cluster

        job = mapreduce_job(num_maps=40, num_reduces=4)
        sim = Simulator()
        cluster = quiet_cluster(sim)
        manager = JobManager(cluster, job.graph, job.profile,
                             initial_allocation=20)
        trace = run_to_completion(manager)
        chain = critical_path_tasks(trace, job.graph)
        assert chain[-1].end_time == pytest.approx(trace.end_time)
        assert chain[0].stage == "map"
        assert chain[-1].stage == "reduce"


class TestSummarize:
    def test_contains_key_facts(self):
        text = summarize_trace(simple_trace(), simple_graph())
        assert "job 'g'" in text
        assert "deadline" in text and "met" in text
        assert "critical path" in text

    def test_without_graph(self):
        text = summarize_trace(simple_trace())
        assert "critical path" not in text

    def test_reports_bad_attempts(self):
        trace = simple_trace()
        trace.add(TaskRecord("map", 0, 1, 0.0, 0.0, 5.0, outcome=OUTCOME_FAILED))
        text = summarize_trace(trace)
        assert "failed=1" in text
