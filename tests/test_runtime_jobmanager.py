"""Unit and integration tests for the job manager on the cluster substrate."""

import pytest

from repro.cluster import Cluster, ClusterConfig, Consumer
from repro.jobs.dag import Edge, EdgeType, JobGraph, Stage
from repro.jobs.profiles import JobProfile, StageProfile
from repro.runtime.jobmanager import JobManager, JobManagerError, run_to_completion
from repro.simkit.distributions import Constant
from repro.simkit.events import Simulator
from repro.simkit.random import RngRegistry


def quiet_cluster(sim, *, machines=10, slots=4, seed=0):
    """A cluster with no background load, no soaker, no failures —
    deterministic grants equal to the job's guarantee."""
    config = ClusterConfig(
        num_machines=machines,
        slots_per_machine=slots,
        background_guaranteed=0,
        spare_soaker_weight=0.0,
        machine_mtbf_seconds=None,
        contention_coeff=0.0,
    )
    return Cluster(sim, config, rng=RngRegistry(seed))


def two_stage_job(num_maps=6, num_reduces=2, map_time=10.0, reduce_time=5.0,
                  failure_prob=0.0):
    graph = JobGraph(
        "tiny",
        [Stage("map", num_maps), Stage("reduce", num_reduces)],
        [Edge("map", "reduce", EdgeType.ALL_TO_ALL)],
    )
    profile = JobProfile(
        graph,
        {
            "map": StageProfile("map", runtime=Constant(map_time),
                                failure_prob=failure_prob),
            "reduce": StageProfile("reduce", runtime=Constant(reduce_time)),
        },
    )
    return graph, profile


class TestBasicExecution:
    def test_runs_to_completion(self):
        sim = Simulator()
        cluster = quiet_cluster(sim)
        graph, profile = two_stage_job()
        manager = JobManager(cluster, graph, profile, initial_allocation=10)
        trace = run_to_completion(manager)
        assert manager.finished
        assert trace.finished
        ok = trace.successful_records()
        assert len(ok) == graph.num_vertices

    def test_duration_with_full_parallelism(self):
        """6 maps at 10s in parallel, then 2 reduces at 5s: 15s total."""
        sim = Simulator()
        cluster = quiet_cluster(sim)
        graph, profile = two_stage_job()
        manager = JobManager(cluster, graph, profile, initial_allocation=10)
        trace = run_to_completion(manager)
        assert trace.duration == pytest.approx(15.0)

    def test_duration_serialized_by_capacity(self):
        """With a 1-slot cluster the job is fully serial: 6x10 + 2x5 = 70s.
        (Work conservation means a 1-token *guarantee* on an idle cluster
        would still run wide on spare tokens.)"""
        sim = Simulator()
        cluster = quiet_cluster(sim, machines=1, slots=1)
        graph, profile = two_stage_job()
        manager = JobManager(cluster, graph, profile, initial_allocation=1)
        trace = run_to_completion(manager)
        assert trace.duration == pytest.approx(70.0)

    def test_work_conservation_uses_spare(self):
        """A 1-token guarantee on an otherwise idle cluster still runs at
        full parallelism via spare tokens (§2.1)."""
        sim = Simulator()
        cluster = quiet_cluster(sim)
        graph, profile = two_stage_job()
        manager = JobManager(cluster, graph, profile, initial_allocation=1)
        trace = run_to_completion(manager)
        assert trace.duration == pytest.approx(15.0)
        assert trace.spare_fraction() > 0.5

    def test_barrier_semantics(self):
        """No reduce may start before every map ends."""
        sim = Simulator()
        cluster = quiet_cluster(sim)
        graph, profile = two_stage_job()
        manager = JobManager(cluster, graph, profile, initial_allocation=3)
        trace = run_to_completion(manager)
        last_map_end = max(
            r.end_time for r in trace.records if r.stage == "map"
        )
        first_reduce_start = min(
            r.start_time for r in trace.records if r.stage == "reduce"
        )
        assert first_reduce_start >= last_map_end

    def test_each_task_completes_exactly_once(self):
        sim = Simulator()
        cluster = quiet_cluster(sim)
        graph, profile = two_stage_job()
        manager = JobManager(cluster, graph, profile, initial_allocation=4)
        trace = run_to_completion(manager)
        ok = [(r.stage, r.index) for r in trace.successful_records()]
        assert len(ok) == len(set(ok)) == graph.num_vertices

    def test_cpu_seconds_match_task_times(self):
        sim = Simulator()
        cluster = quiet_cluster(sim)
        graph, profile = two_stage_job()
        manager = JobManager(cluster, graph, profile, initial_allocation=10)
        trace = run_to_completion(manager)
        assert trace.total_cpu_seconds() == pytest.approx(6 * 10 + 2 * 5)

    def test_completion_callback(self):
        sim = Simulator()
        cluster = quiet_cluster(sim)
        graph, profile = two_stage_job()
        done = []
        manager = JobManager(
            cluster, graph, profile, initial_allocation=10,
            on_complete=lambda m: done.append(m.graph.name),
        )
        run_to_completion(manager)
        assert done == ["tiny"]

    def test_guarantee_released_after_completion(self):
        sim = Simulator()
        cluster = quiet_cluster(sim)
        graph, profile = two_stage_job()
        manager = JobManager(cluster, graph, profile, initial_allocation=10)
        run_to_completion(manager)
        assert cluster.pool.consumer(manager.name).guaranteed == 0


class TestAllocationControl:
    def test_set_allocation_recorded_in_trace(self):
        sim = Simulator()
        cluster = quiet_cluster(sim)
        graph, profile = two_stage_job()
        manager = JobManager(cluster, graph, profile, initial_allocation=2)
        sim.schedule(5.0, lambda: manager.set_allocation(6))
        trace = run_to_completion(manager)
        allocs = [a for _t, a in trace.allocation_timeline]
        assert allocs[0] == 2
        assert 6 in allocs

    def test_set_allocation_clamped_by_headroom(self):
        sim = Simulator()
        cluster = quiet_cluster(sim, machines=5, slots=2)  # capacity 10
        cluster.pool.register(Consumer("other", 6))
        graph, profile = two_stage_job()
        manager = JobManager(cluster, graph, profile, initial_allocation=2)
        assert manager.set_allocation(100) == 4

    def test_negative_allocation_rejected(self):
        sim = Simulator()
        cluster = quiet_cluster(sim)
        graph, profile = two_stage_job()
        manager = JobManager(cluster, graph, profile)
        with pytest.raises(JobManagerError):
            manager.set_allocation(-1)

    def test_raising_allocation_speeds_job(self):
        """When other pending work soaks the spare tokens, the guarantee is
        the job's real throughput knob."""
        durations = {}
        for alloc in (1, 8):
            sim = Simulator()
            cluster = quiet_cluster(sim)
            soak = cluster.pool.register(Consumer("soak", 0, weight=10_000.0))
            cluster.pool.set_demand("soak", 1000)
            graph, profile = two_stage_job()
            manager = JobManager(cluster, graph, profile, initial_allocation=alloc)
            durations[alloc] = run_to_completion(manager).duration
        assert durations[8] < durations[1]


class TestEviction:
    def test_grant_cut_evicts_and_requeues(self):
        """A competitor claiming guaranteed capacity mid-run evicts the
        job's spare-token tasks; the job still completes correctly."""
        sim = Simulator()
        cluster = quiet_cluster(sim, machines=5, slots=2)  # capacity 10
        competitor = cluster.pool.register(Consumer("competitor", 6))
        graph, profile = two_stage_job(num_maps=8, map_time=30.0)
        manager = JobManager(cluster, graph, profile, initial_allocation=4)
        # Job demand 8 > guarantee 4: it runs 8 tasks using competitor's
        # idle guarantee.  At t=10 the competitor wants its capacity back.
        sim.schedule(10.0, lambda: cluster.pool.set_demand("competitor", 6))
        trace = run_to_completion(manager)
        evicted = [r for r in trace.records if r.outcome == "evicted"]
        assert len(evicted) == 4
        assert all(r.used_spare_token for r in evicted)
        assert len(trace.successful_records()) == graph.num_vertices

    def test_eviction_loses_work(self):
        sim = Simulator()
        cluster = quiet_cluster(sim, machines=5, slots=2)
        cluster.pool.register(Consumer("competitor", 6))
        graph, profile = two_stage_job(num_maps=8, map_time=30.0)
        manager = JobManager(cluster, graph, profile, initial_allocation=4)
        sim.schedule(10.0, lambda: cluster.pool.set_demand("competitor", 6))
        trace = run_to_completion(manager)
        assert trace.wasted_cpu_seconds() > 0

    def test_spare_flag_tracks_guaranteed_part(self):
        sim = Simulator()
        cluster = quiet_cluster(sim, machines=5, slots=2)
        cluster.pool.register(Consumer("idle", 6))  # idle guarantee -> spare
        graph, profile = two_stage_job(num_maps=8, map_time=30.0)
        manager = JobManager(cluster, graph, profile, initial_allocation=4)
        sim.run(until=5.0)
        spare_now = sum(1 for t in manager._running if t.used_spare_token)
        assert manager.tasks_running == 8
        assert spare_now == 4


class TestFailures:
    def test_task_failures_retried(self):
        sim = Simulator()
        cluster = quiet_cluster(sim)
        graph, profile = two_stage_job(failure_prob=0.3)
        manager = JobManager(
            cluster, graph, profile, initial_allocation=10,
            rng=RngRegistry(7).stream("t"),
        )
        trace = run_to_completion(manager)
        failed = [r for r in trace.records if r.outcome == "failed"]
        assert failed, "expected at least one failure at p=0.3"
        assert len(trace.successful_records()) == graph.num_vertices

    def test_machine_failure_kills_and_retries_tasks(self):
        sim = Simulator()
        cluster = quiet_cluster(sim, machines=2, slots=10)
        graph, profile = two_stage_job(num_maps=10, map_time=50.0)
        manager = JobManager(cluster, graph, profile, initial_allocation=10)
        sim.run(until=5.0)
        victims = [t for t in manager._running if t.machine == 0]
        cluster.failures.fail_now(0, repair_seconds=10.0)
        trace = run_to_completion(manager)
        failed = [r for r in trace.records if r.outcome == "failed"]
        assert len(failed) == len(victims)
        assert len(trace.successful_records()) == graph.num_vertices


class TestSnapshot:
    def test_fractions_progress_over_time(self):
        sim = Simulator()
        cluster = quiet_cluster(sim)
        graph, profile = two_stage_job()
        manager = JobManager(cluster, graph, profile, initial_allocation=10)
        snap0 = manager.snapshot()
        assert snap0.stage_fractions == {"map": 0.0, "reduce": 0.0}
        sim.run(until=12.0)
        snap1 = manager.snapshot()
        assert snap1.stage_fractions["map"] == 1.0
        assert snap1.stage_fractions["reduce"] == 0.0
        assert snap1.elapsed == 12.0

    def test_snapshot_reports_allocation(self):
        sim = Simulator()
        cluster = quiet_cluster(sim)
        graph, profile = two_stage_job()
        manager = JobManager(cluster, graph, profile, initial_allocation=3)
        assert manager.snapshot().allocation == 3


class TestRunToCompletion:
    def test_stalled_job_raises(self):
        sim = Simulator()
        cluster = quiet_cluster(sim)
        hog = cluster.pool.register(Consumer("hog", cluster.pool.capacity))
        cluster.pool.set_demand("hog", cluster.pool.capacity)
        graph, profile = two_stage_job()
        manager = JobManager(cluster, graph, profile, initial_allocation=0)
        with pytest.raises(JobManagerError, match="did not finish"):
            run_to_completion(manager, max_seconds=100.0)
