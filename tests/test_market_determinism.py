"""Determinism and acceptance properties of the ``exp_market`` sweep.

The digest must be byte-identical at any worker count and across repeat
runs on the same seed, and the sweep must land the ISSUE's acceptance
shape: split token buckets attain strictly less than the pooled market
on paired workloads.
"""

import hashlib
import json
import os

import pytest

from repro.experiments import SMOKE
from repro.experiments import exp_market


def _sweep_digest(tmp, jobs: str) -> bytes:
    old_jobs = os.environ.get("REPRO_JOBS")
    old_cwd = os.getcwd()
    os.environ["REPRO_JOBS"] = jobs
    os.chdir(tmp)
    try:
        exp_market.run(SMOKE, seed=0)
        return (tmp / exp_market.DIGEST_PATH).read_bytes()
    finally:
        os.chdir(old_cwd)
        if old_jobs is None:
            os.environ.pop("REPRO_JOBS", None)
        else:
            os.environ["REPRO_JOBS"] = old_jobs


@pytest.fixture(scope="module")
def digest_serial(tmp_path_factory):
    return _sweep_digest(tmp_path_factory.mktemp("market_serial"), jobs="1")


class TestSweepDigest:
    def test_digest_identical_across_worker_counts(
        self, digest_serial, tmp_path_factory
    ):
        parallel = _sweep_digest(
            tmp_path_factory.mktemp("market_parallel"), jobs="2"
        )
        assert (
            hashlib.sha256(digest_serial).hexdigest()
            == hashlib.sha256(parallel).hexdigest()
        )

    def test_digest_identical_across_repeat_runs(
        self, digest_serial, tmp_path_factory
    ):
        again = _sweep_digest(
            tmp_path_factory.mktemp("market_again"), jobs="1"
        )
        assert again == digest_serial

    def test_split_attains_strictly_less_than_pooled(self, digest_serial):
        """The ISSUE's acceptance inequality on paired seeds."""
        digest = json.loads(digest_serial.decode("utf-8"))
        assert digest["split_attainment"] < digest["pooled_attainment"]
        # And per paired workload, splitting never helps.
        for pair in digest["pairs"]:
            assert pair["split_attainment"] <= pair["pooled_attainment"]

    def test_pairs_share_workloads(self, digest_serial):
        """Pooled and split cells submit identical job populations."""
        digest = json.loads(digest_serial.decode("utf-8"))
        by_key = {
            (u["mode"], u["quota_scale"], u["rep"]): u
            for u in digest["runs"]
        }
        for qs in digest["quota_scales"]:
            for rep in range(digest["shape"]["reps"]):
                pooled = by_key[("pooled", qs, rep)]
                split = by_key[("split", qs, rep)]
                assert pooled["submitted"] == split["submitted"]
                assert (
                    [t["name"] for t in pooled["tenants"]]
                    == [t["name"] for t in split["tenants"]]
                )
                assert (
                    [t["quota"] for t in pooled["tenants"]]
                    == [t["quota"] for t in split["tenants"]]
                )

    def test_digest_records_every_run(self, digest_serial):
        digest = json.loads(digest_serial.decode("utf-8"))
        assert digest["experiment"] == "market"
        shape = digest["shape"]
        expected = 2 * len(digest["quota_scales"]) * shape["reps"]
        assert len(digest["runs"]) == expected
        assert len(digest["aggregates"]) == 2 * len(digest["quota_scales"])
        for unit in digest["runs"]:
            assert (
                unit["submitted"]
                == shape["tenants"] * shape["jobs_per_tenant"]
            )

    def test_tighter_quotas_cost_attainment(self, digest_serial):
        """Quota sizing matters: the fully-tiled quota (1.0) beats the
        tightest sizing swept, in both market structures."""
        digest = json.loads(digest_serial.decode("utf-8"))
        for mode in ("pooled", "split"):
            by_qs = {
                a["quota_scale"]: a["attainment"]
                for a in digest["aggregates"] if a["mode"] == mode
            }
            scales = sorted(by_qs)
            assert by_qs[scales[0]] <= by_qs[scales[-1]], mode
