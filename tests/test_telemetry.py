"""Unit and integration tests for the repro.telemetry subsystem."""

import io
import json

import pytest

from repro.telemetry import audit as audit_mod
from repro.telemetry import export, metrics, trace
from repro.telemetry.audit import ControlAudit, TickRecord, reconstruct_allocations
from repro.telemetry.metrics import MetricError, MetricsRegistry
from repro.telemetry.trace import NULL, TraceEvent, TraceRecorder


# ----------------------------------------------------------------------
# Metrics registry
# ----------------------------------------------------------------------


class TestCounter:
    def test_inc_accumulates(self):
        reg = MetricsRegistry()
        c = reg.counter("repro_test_total")
        c.inc()
        c.inc(2.5)
        assert c.value == 3.5

    def test_negative_rejected(self):
        reg = MetricsRegistry()
        with pytest.raises(MetricError):
            reg.counter("repro_test_total").inc(-1)

    def test_labels_separate_cells(self):
        reg = MetricsRegistry()
        c = reg.counter("repro_runtime_tasks_total", labelnames=("outcome",))
        c.labels(outcome="ok").inc(3)
        c.labels(outcome="failed").inc()
        snap = c.snapshot()
        assert snap["values"]['outcome="ok"'] == 3
        assert snap["values"]['outcome="failed"'] == 1

    def test_labels_cached_identity(self):
        reg = MetricsRegistry()
        c = reg.counter("repro_x_total", labelnames=("a",))
        assert c.labels(a="1") is c.labels(a="1")

    def test_wrong_labels_rejected(self):
        reg = MetricsRegistry()
        c = reg.counter("repro_x_total", labelnames=("a",))
        with pytest.raises(MetricError):
            c.labels(b="1")
        with pytest.raises(MetricError):
            c.inc()  # labelled metric has no default cell

    def test_bad_name_rejected(self):
        with pytest.raises(MetricError):
            MetricsRegistry().counter("bad name!")


class TestGauge:
    def test_set_inc_dec(self):
        g = MetricsRegistry().gauge("repro_test_gauge")
        g.set(10)
        g.inc(5)
        g.dec(2)
        assert g.value == 13


class TestHistogram:
    def test_observe_buckets_cumulative(self):
        reg = MetricsRegistry()
        h = reg.histogram("repro_test_seconds", buckets=(1.0, 10.0, 100.0))
        for v in (0.5, 5.0, 50.0, 500.0):
            h.observe(v)
        snap = h.snapshot()["values"][""]
        assert snap["count"] == 4
        assert snap["sum"] == pytest.approx(555.5)
        assert snap["buckets"]["1.0"] == 1
        assert snap["buckets"]["10.0"] == 2
        assert snap["buckets"]["100.0"] == 3
        assert snap["buckets"]["+Inf"] == 4

    def test_labelled_histogram(self):
        reg = MetricsRegistry()
        h = reg.histogram("repro_test_seconds", labelnames=("outcome",),
                          buckets=(1.0,))
        h.labels(outcome="ok").observe(0.5)
        assert h.snapshot()["values"]['outcome="ok"']["count"] == 1


class TestRegistry:
    def test_get_or_create_returns_same(self):
        reg = MetricsRegistry()
        assert reg.counter("repro_a_total") is reg.counter("repro_a_total")

    def test_kind_mismatch_rejected(self):
        reg = MetricsRegistry()
        reg.counter("repro_a_total")
        with pytest.raises(MetricError):
            reg.gauge("repro_a_total")

    def test_reset_zeroes_in_place(self):
        reg = MetricsRegistry()
        c = reg.counter("repro_a_total", labelnames=("k",))
        child = c.labels(k="x")
        child.inc(7)
        reg.reset()
        assert child.value == 0.0  # the cached child, not a replacement
        child.inc()
        assert c.snapshot()["values"]['k="x"'] == 1

    def test_snapshot_is_json_serializable(self):
        reg = MetricsRegistry()
        reg.counter("repro_a_total").inc()
        reg.gauge("repro_b").set(2)
        reg.histogram("repro_c_seconds").observe(3.0)
        json.dumps(reg.snapshot())


# ----------------------------------------------------------------------
# Trace recorder
# ----------------------------------------------------------------------


class TestRecorder:
    def test_null_recorder_is_default_and_noop(self):
        assert trace.RECORDER is NULL
        assert not trace.RECORDER.enabled
        trace.RECORDER.emit(0.0, "anything", x=1)  # must not raise
        assert trace.RECORDER.events() == []
        assert len(trace.RECORDER) == 0

    def test_emit_and_events(self):
        rec = TraceRecorder(capacity=10)
        rec.emit(1.0, "task.start", job="j", stage="s")
        rec.emit(2.0, "task.end", job="j", stage="s")
        events = rec.events()
        assert [e.kind for e in events] == ["task.start", "task.end"]
        assert events[0].fields == {"job": "j", "stage": "s"}

    def test_ring_buffer_drops_oldest(self):
        rec = TraceRecorder(capacity=3)
        for i in range(5):
            rec.emit(float(i), "e", i=i)
        assert rec.dropped == 2
        assert [e.fields["i"] for e in rec.events()] == [2, 3, 4]

    def test_capture_installs_and_restores(self):
        assert trace.RECORDER is NULL
        with trace.capture() as rec:
            assert trace.RECORDER is rec
            assert trace.RECORDER.enabled
        assert trace.RECORDER is NULL

    def test_capture_restores_on_exception(self):
        with pytest.raises(RuntimeError):
            with trace.capture():
                raise RuntimeError("boom")
        assert trace.RECORDER is NULL

    def test_install_none_disables(self):
        prev = trace.install(TraceRecorder())
        try:
            trace.install(None)
            assert trace.RECORDER is NULL
        finally:
            trace.install(prev)

    def test_capacity_validated(self):
        with pytest.raises(ValueError):
            TraceRecorder(capacity=0)


# ----------------------------------------------------------------------
# Exporters
# ----------------------------------------------------------------------


def _sample_events():
    return [
        TraceEvent(1.0, "task.queued", {"job": "j", "stage": "map", "index": 0}),
        TraceEvent(2.0, "task.start", {"job": "j", "stage": "map", "index": 0}),
        TraceEvent(9.0, "task.end",
                   {"job": "j", "stage": "map", "index": 0,
                    "outcome": "ok", "start": 2.0, "end": 9.0}),
        TraceEvent(10.0, "control.tick", {"raw": 20, "allocation": 20}),
    ]


class TestJsonl:
    def test_round_trip_file(self, tmp_path):
        path = tmp_path / "t.jsonl"
        events = _sample_events()
        assert export.write_jsonl(events, str(path)) == len(events)
        assert export.read_jsonl(str(path)) == events

    def test_round_trip_stream(self):
        buf = io.StringIO()
        events = _sample_events()
        export.write_jsonl(events, buf)
        buf.seek(0)
        assert export.read_jsonl(buf) == events

    def test_bad_line_raises(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"ts": 1.0, "kind": "a", "fields": {}}\nnot json\n')
        with pytest.raises(export.ExportError):
            export.read_jsonl(str(path))


class TestChromeTrace:
    def test_document_shape(self):
        doc = export.to_chrome_trace(_sample_events())
        assert "traceEvents" in doc
        json.dumps(doc)  # serializable
        phases = [e["ph"] for e in doc["traceEvents"]]
        assert "M" in phases and "i" in phases and "X" in phases

    def test_span_events_carry_duration(self):
        doc = export.to_chrome_trace(_sample_events())
        spans = [e for e in doc["traceEvents"] if e["ph"] == "X"]
        assert len(spans) == 1
        assert spans[0]["ts"] == pytest.approx(2.0 * 1e6)
        assert spans[0]["dur"] == pytest.approx(7.0 * 1e6)

    def test_write_and_load_round_trip(self, tmp_path):
        path = tmp_path / "chrome.json"
        export.write_chrome_trace(_sample_events(), str(path))
        loaded = export.load_events(str(path))
        assert {e.kind for e in loaded} == {e.kind for e in _sample_events()}

    def test_load_detects_jsonl(self, tmp_path):
        path = tmp_path / "t.jsonl"
        export.write_jsonl(_sample_events(), str(path))
        assert export.load_events(str(path)) == _sample_events()


class TestSummarize:
    def test_empty(self):
        assert "empty" in export.summarize([])

    def test_counts_per_kind(self):
        text = export.summarize(_sample_events())
        assert "task.end" in text
        assert "control.tick" in text
        assert "4 events" in text

    def test_gap_columns_present(self):
        text = export.summarize(_sample_events())
        assert "p50 gap" in text
        assert "p95 gap" in text

    def test_single_event_kind_has_dash_gaps(self):
        text = export.summarize(_sample_events())
        # Every sample kind has exactly one event, so no gaps exist yet.
        for line in text.splitlines():
            if line.startswith("task.end"):
                assert line.rstrip().endswith("-")

    def test_gap_percentiles_from_regular_cadence(self):
        # 11 ticks every 60s -> 10 gaps, all exactly 60.0.
        events = [
            TraceEvent(60.0 * i, "control.tick", {"tick": i})
            for i in range(11)
        ]
        text = export.summarize(events)
        line = next(
            ln for ln in text.splitlines() if ln.startswith("control.tick")
        )
        cols = line.split()
        assert cols[-2] == "60.00"  # p50 gap
        assert cols[-1] == "60.00"  # p95 gap

    def test_gap_percentiles_spread(self):
        # Nine one-second gaps plus one 100s outlier: p50 stays at the
        # cadence, p95 (nearest rank of 10 gaps) catches the straggler.
        stamps = [float(i) for i in range(10)] + [109.0]
        events = [TraceEvent(ts, "task.start", {}) for ts in stamps]
        line = next(
            ln for ln in export.summarize(events).splitlines()
            if ln.startswith("task.start")
        )
        cols = line.split()
        assert cols[-2] == "1.00"
        assert cols[-1] == "100.00"

    def test_gaps_use_sorted_timestamps(self):
        # Out-of-order delivery must not produce negative gaps.
        events = [
            TraceEvent(ts, "shuffled", {})
            for ts in (30.0, 0.0, 10.0, 20.0)
        ]
        line = next(
            ln for ln in export.summarize(events).splitlines()
            if ln.startswith("shuffled")
        )
        cols = line.split()
        assert cols[-2] == "10.00"
        assert cols[-1] == "10.00"


# ----------------------------------------------------------------------
# Control audit
# ----------------------------------------------------------------------


def _tick(i, raw, prev, alpha=0.5, min_t=1, max_t=100):
    smoothed = audit_mod.apply_hysteresis(prev, raw, alpha)
    return TickRecord(
        tick=i, phase=audit_mod.PHASE_TICK, elapsed=60.0 * i, progress=None,
        candidates=(), raw=raw, dead_zone_triggered=False,
        prev_smoothed=prev, smoothed=smoothed,
        allocation=audit_mod.quantize_allocation(smoothed, min_t, max_t),
        predicted_remaining=0.0, utility=0.0,
    )


class TestControlAudit:
    def test_reconstruction_matches_records(self):
        records = []
        prev = None
        records.append(TickRecord(
            tick=0, phase=audit_mod.PHASE_INITIAL, elapsed=0.0, progress=0.0,
            candidates=(), raw=20, dead_zone_triggered=False,
            prev_smoothed=None, smoothed=20.0, allocation=20,
            predicted_remaining=0.0, utility=0.0,
        ))
        prev = 20.0
        for i, raw in enumerate((70, 70, 30), start=1):
            rec = _tick(i, raw, prev)
            records.append(rec)
            prev = rec.smoothed
        replayed = reconstruct_allocations(
            records, hysteresis=0.5, min_tokens=1, max_tokens=100
        )
        assert replayed == [r.allocation for r in records]

    def test_capacity_bounds_records(self):
        aud = ControlAudit(capacity=2)
        prev = None
        for i in range(5):
            rec = _tick(i, 10, prev)
            aud.record(rec)
            prev = rec.smoothed
        assert len(aud) == 2
        assert aud.decisions()[-1].tick == 4

    def test_dead_zone_filter(self):
        aud = ControlAudit()
        base = _tick(0, 10, None)
        aud.record(base)
        aud.record(TickRecord(**{**base.__dict__, "tick": 1,
                                 "dead_zone_triggered": True}))
        assert len(aud.dead_zone_ticks()) == 1


# ----------------------------------------------------------------------
# End-to-end: instrumented stack
# ----------------------------------------------------------------------


def _run_small_job():
    from repro.cluster import Cluster, ClusterConfig
    from repro.jobs.workloads import mapreduce_job
    from repro.runtime import JobManager, run_to_completion
    from repro.simkit.events import Simulator
    from repro.simkit.random import RngRegistry

    generated = mapreduce_job(num_maps=30, num_reduces=5)
    sim = Simulator()
    cluster = Cluster(sim, ClusterConfig(), rng=RngRegistry(7))
    manager = JobManager(
        cluster, generated.graph, generated.profile,
        initial_allocation=40, rng=RngRegistry(7).stream("t"),
    )
    run_to_completion(manager)
    return sim, manager


class TestEndToEnd:
    def test_task_lifecycle_events_recorded(self):
        with trace.capture(capacity=1 << 18) as rec:
            _sim, manager = _run_small_job()
        kinds = {e.kind for e in rec.events()}
        assert {"task.queued", "task.start", "task.end",
                "tokens.grant", "job.complete"} <= kinds
        ends = [e for e in rec.events() if e.kind == "task.end"]
        ok = [e for e in ends if e.fields["outcome"] == "ok"]
        # every vertex completes exactly once with outcome ok
        assert len(ok) == manager.graph.num_vertices
        for e in ok:
            assert e.fields["end"] >= e.fields["start"]

    def test_disabled_recorder_records_nothing(self):
        assert trace.RECORDER is NULL
        _run_small_job()
        assert trace.RECORDER.events() == []

    def test_task_counters_increment(self):
        reg = metrics.REGISTRY
        before = reg.counter(
            "repro_runtime_tasks_total", labelnames=("outcome",)
        ).labels(outcome="ok").value
        _sim, manager = _run_small_job()
        after = reg.counter(
            "repro_runtime_tasks_total", labelnames=("outcome",)
        ).labels(outcome="ok").value
        assert after - before >= manager.graph.num_vertices

    def test_simulator_publishes_gauges(self):
        sim, _manager = _run_small_job()
        reg = MetricsRegistry()
        sim.publish_metrics(reg)
        snap = reg.snapshot()
        assert snap["repro_simkit_events_dispatched"]["values"][""] > 0
        assert snap["repro_simkit_virtual_time_seconds"]["values"][""] > 0
        assert "repro_simkit_cancelled_pending" in snap


class TestRegistryEnabledFlag:
    def test_default_enabled_and_toggle_returns_previous(self):
        reg = MetricsRegistry()
        assert reg.enabled is True
        assert reg.set_enabled(False) is True
        assert reg.enabled is False
        assert reg.set_enabled(True) is False
        assert reg.enabled is True

    def test_disabled_registry_still_counts_explicit_calls(self):
        # The flag is advisory for hot paths; instruments keep working.
        reg = MetricsRegistry()
        counter = reg.counter("explicit_total", "d")
        reg.set_enabled(False)
        counter.inc()
        assert counter.value == 1
