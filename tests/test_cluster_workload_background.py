"""Unit tests for the task-level background workload."""

import numpy as np
import pytest

from repro.cluster import Cluster, ClusterConfig, Consumer
from repro.cluster.tokens import TokenPool
from repro.cluster.workload_background import (
    WorkloadBackground,
    WorkloadBackgroundConfig,
    WorkloadBackgroundError,
)
from repro.simkit.events import Simulator
from repro.simkit.random import RngRegistry


def make_workload(sim, pool, seed=0, **config_kwargs):
    defaults = dict(
        interarrival_seconds=60.0,
        tasks_median=30,
        task_median_seconds=20.0,
        guaranteed_range=(5, 15),
        reserve_headroom=50,
    )
    defaults.update(config_kwargs)
    return WorkloadBackground(
        sim, pool, np.random.default_rng(seed),
        config=WorkloadBackgroundConfig(**defaults),
        warm_start_jobs=4,
    )


class TestConfigValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(interarrival_seconds=0.0),
            dict(tasks_median=0),
            dict(task_median_seconds=0.0),
            dict(guaranteed_range=(10, 5)),
            dict(reserve_headroom=-1),
        ],
    )
    def test_rejected(self, kwargs):
        with pytest.raises(WorkloadBackgroundError):
            WorkloadBackgroundConfig(**kwargs)


class TestWorkloadBackground:
    def test_jobs_arrive_run_and_finish(self):
        sim = Simulator()
        pool = TokenPool(200)
        workload = make_workload(sim, pool)
        sim.run(until=4 * 3600.0)
        assert workload.jobs_started > 4
        assert workload.jobs_finished > 0

    def test_occupies_capacity(self):
        sim = Simulator()
        pool = TokenPool(200)
        workload = make_workload(sim, pool)
        busy = []
        sim.schedule_every(120.0, lambda: busy.append(workload.tasks_in_flight))
        sim.run(until=3600.0)
        assert max(busy) > 20

    def test_respects_reserve_headroom(self):
        sim = Simulator()
        pool = TokenPool(200)
        make_workload(sim, pool, reserve_headroom=80)
        sim.run(until=1800.0)
        assert pool.guaranteed_headroom() >= 80

    def test_slo_job_can_still_reserve(self):
        sim = Simulator()
        pool = TokenPool(200)
        make_workload(sim, pool, reserve_headroom=80)
        sim.run(until=600.0)
        slo = pool.register(Consumer("slo", 80))
        pool.set_demand("slo", 80)
        assert slo.grant.guaranteed_part == 80

    def test_background_tasks_evicted_by_guaranteed_demand(self):
        """An SLO job claiming its guarantee mid-run pushes background
        spare-token tasks out."""
        sim = Simulator()
        pool = TokenPool(100)
        workload = make_workload(
            sim, pool, guaranteed_range=(2, 4), reserve_headroom=60,
            tasks_median=200,
        )
        sim.run(until=900.0)
        in_flight_before = workload.tasks_in_flight
        assert in_flight_before > 20  # mostly on spare tokens
        pool.register(Consumer("slo", 60))
        pool.set_demand("slo", 60)
        sim.run(until=901.0)
        assert workload.tasks_in_flight < in_flight_before

    def test_deterministic(self):
        counts = []
        for _ in range(2):
            sim = Simulator()
            pool = TokenPool(150)
            workload = make_workload(sim, pool, seed=9)
            sim.run(until=3600.0)
            counts.append((workload.jobs_started, workload.jobs_finished))
        assert counts[0] == counts[1]

    def test_integrates_with_cluster_facade(self):
        """Full stack: an SLO job runs against task-level background."""
        from repro.jobs.workloads import mapreduce_job
        from repro.runtime.jobmanager import JobManager, run_to_completion

        sim = Simulator()
        cluster = Cluster(
            sim,
            ClusterConfig(
                background_guaranteed=0,       # disable the demand process
                spare_soaker_weight=0.0,
                machine_mtbf_seconds=None,
            ),
            rng=RngRegistry(3),
        )
        WorkloadBackground(
            sim, cluster.pool, RngRegistry(3).stream("bg-workload"),
            config=WorkloadBackgroundConfig(
                interarrival_seconds=45.0,
                tasks_median=80,
                task_median_seconds=30.0,
                guaranteed_range=(10, 30),
                reserve_headroom=100,
            ),
        )
        job = mapreduce_job(num_maps=120, num_reduces=10)
        manager = JobManager(
            cluster, job.graph, job.profile, initial_allocation=40,
            rng=RngRegistry(3).stream("slo"),
        )
        trace = run_to_completion(manager)
        assert trace.finished
        assert len(trace.successful_records()) == job.graph.num_vertices
