"""Tests for the process-pool executor and parallel model building.

The load-bearing property is *worker-count invariance*: a C(p, a) table
or experiment sweep must come out bit-identical whether it ran serially
or across any number of worker processes, because every unit carries its
own derived RNG substream.
"""

import numpy as np
import pytest

from repro.core.cpa import CpaTable
from repro.core.progress import totalwork
from repro.jobs.dag import Edge, EdgeType, JobGraph, Stage
from repro.jobs.profiles import JobProfile, StageProfile
from repro.parallel import JOBS_ENV, ParallelError, parallel_map, resolve_jobs
from repro.simkit.distributions import LogNormal, Uniform


def stochastic_profile():
    """A small profile with real randomness, so RNG-stream bugs between
    serial and parallel builds cannot hide behind constant runtimes."""
    graph = JobGraph(
        "stoch",
        [Stage("map", 8), Stage("reduce", 3)],
        [Edge("map", "reduce", EdgeType.ALL_TO_ALL)],
    )
    return JobProfile(
        graph,
        {
            "map": StageProfile(
                "map",
                runtime=LogNormal(2.0, 0.4),
                init=Uniform(0.5, 1.5),
                failure_prob=0.05,
            ),
            "reduce": StageProfile("reduce", runtime=Uniform(4.0, 8.0)),
        },
    )


def _square(x):
    return x * x


class TestResolveJobs:
    def test_default_is_serial(self, monkeypatch):
        monkeypatch.delenv(JOBS_ENV, raising=False)
        assert resolve_jobs() == 1

    def test_explicit_wins_over_env(self, monkeypatch):
        monkeypatch.setenv(JOBS_ENV, "7")
        assert resolve_jobs(3) == 3

    def test_env_applies_when_unspecified(self, monkeypatch):
        monkeypatch.setenv(JOBS_ENV, "4")
        assert resolve_jobs() == 4

    def test_zero_and_auto_mean_all_cores(self, monkeypatch):
        import os

        monkeypatch.setenv(JOBS_ENV, "auto")
        assert resolve_jobs() == (os.cpu_count() or 1)
        assert resolve_jobs(0) == (os.cpu_count() or 1)

    def test_negative_rejected(self):
        with pytest.raises(ParallelError):
            resolve_jobs(-2)

    def test_garbage_env_rejected(self, monkeypatch):
        monkeypatch.setenv(JOBS_ENV, "many")
        with pytest.raises(ParallelError):
            resolve_jobs()


class TestParallelMap:
    def test_serial_preserves_order(self):
        assert parallel_map(_square, [3, 1, 2], jobs=1) == [9, 1, 4]

    def test_pool_matches_serial(self):
        items = list(range(20))
        assert parallel_map(_square, items, jobs=2) == [
            _square(i) for i in items
        ]

    def test_empty_input(self):
        assert parallel_map(_square, [], jobs=4) == []

    def test_single_item_stays_serial(self):
        # Non-picklable fn would explode in a pool; one item never forks.
        assert parallel_map(lambda x: x + 1, [41], jobs=8) == [42]


class TestWorkerCountInvariance:
    def test_table_bit_identical_at_any_worker_count(self):
        profile = stochastic_profile()
        tables = [
            CpaTable.build(
                profile,
                totalwork(profile),
                allocations=(2, 4, 8),
                reps=4,
                num_bins=25,
                sample_dt=2.0,
                seed=123,
                jobs=jobs,
            )
            for jobs in (1, 2, 4)
        ]
        reference = tables[0]
        for other in tables[1:]:
            assert other.allocations == reference.allocations
            for a in reference.allocations:
                ref_bins = reference._columns[a].bins
                other_bins = other._columns[a].bins
                assert len(ref_bins) == len(other_bins)
                for rb, ob in zip(ref_bins, other_bins):
                    assert np.array_equal(rb, ob)

    def test_different_seed_changes_table(self):
        profile = stochastic_profile()
        kwargs = dict(
            allocations=(2, 4), reps=3, num_bins=10, sample_dt=2.0, jobs=1
        )
        t1 = CpaTable.build(profile, totalwork(profile), seed=1, **kwargs)
        t2 = CpaTable.build(profile, totalwork(profile), seed=2, **kwargs)
        assert any(
            not np.array_equal(b1, b2)
            for b1, b2 in zip(t1._columns[2].bins, t2._columns[2].bins)
        )

    def test_build_requires_some_seed_source(self):
        profile = stochastic_profile()
        with pytest.raises(Exception):
            CpaTable.build(
                profile, totalwork(profile), allocations=(2,), reps=1
            )


class TestSuiteFanOut:
    def test_run_suite_parallel_matches_serial(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        from repro.experiments.runner import run_suite
        from repro.experiments.scenarios import SMOKE, trained_job

        trained = trained_job("A", seed=11, scale=SMOKE, use_cache=False)
        kinds = ("jockey", "max-allocation")
        serial = run_suite([trained], kinds, reps=2, jobs=1)
        fanned = run_suite([trained], kinds, reps=2, jobs=2)
        assert len(serial) == len(fanned) == 4
        for a, b in zip(serial, fanned):
            assert a.metrics.policy == b.metrics.policy
            assert a.metrics.duration_seconds == b.metrics.duration_seconds
            assert a.runtime_scale == b.runtime_scale
            assert a.allocation_series == b.allocation_series
