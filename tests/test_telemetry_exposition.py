"""Tests for Prometheus text exposition and the embedded metrics server."""

import json
import urllib.error
import urllib.request

import pytest

from repro.telemetry.exposition import (
    CONTENT_TYPE,
    ExpositionError,
    MetricsServer,
    parse_prometheus,
    render_prometheus,
)
from repro.telemetry.metrics import MetricsRegistry


def populated_registry():
    reg = MetricsRegistry()
    c = reg.counter("repro_test_tasks_total", "Tasks seen",
                    labelnames=("outcome",))
    c.labels(outcome="ok").inc(3)
    c.labels(outcome="failed").inc()
    reg.gauge("repro_test_tokens", "Current tokens").set(42)
    h = reg.histogram("repro_test_seconds", "Durations",
                      buckets=(1.0, 10.0))
    for v in (0.5, 5.0, 50.0):
        h.observe(v)
    return reg


class TestRender:
    def test_help_and_type_lines(self):
        text = render_prometheus(populated_registry())
        assert "# HELP repro_test_tasks_total Tasks seen\n" in text
        assert "# TYPE repro_test_tasks_total counter\n" in text
        assert "# TYPE repro_test_tokens gauge\n" in text
        assert "# TYPE repro_test_seconds histogram\n" in text

    def test_labelled_samples(self):
        text = render_prometheus(populated_registry())
        assert 'repro_test_tasks_total{outcome="failed"} 1\n' in text
        assert 'repro_test_tasks_total{outcome="ok"} 3\n' in text

    def test_histogram_cumulative_buckets_and_inf(self):
        text = render_prometheus(populated_registry())
        assert 'repro_test_seconds_bucket{le="1.0"} 1\n' in text
        assert 'repro_test_seconds_bucket{le="10.0"} 2\n' in text
        assert 'repro_test_seconds_bucket{le="+Inf"} 3\n' in text
        assert "repro_test_seconds_sum 55.5\n" in text
        assert "repro_test_seconds_count 3\n" in text

    def test_deterministic_across_creation_orders(self):
        a = populated_registry()
        # Same instruments, registered and labelled in reverse order.
        b = MetricsRegistry()
        h = b.histogram("repro_test_seconds", "Durations", buckets=(1.0, 10.0))
        b.gauge("repro_test_tokens", "Current tokens").set(42)
        c = b.counter("repro_test_tasks_total", "Tasks seen",
                      labelnames=("outcome",))
        c.labels(outcome="failed").inc()
        c.labels(outcome="ok").inc(3)
        for v in (50.0, 5.0, 0.5):
            h.observe(v)
        assert render_prometheus(a) == render_prometheus(b)

    def test_label_value_escaping(self):
        reg = MetricsRegistry()
        c = reg.counter("repro_test_total", labelnames=("path",))
        c.labels(path='a"b\\c\nd').inc()
        text = render_prometheus(reg)
        assert 'path="a\\"b\\\\c\\nd"' in text

    def test_integral_floats_render_without_point(self):
        reg = MetricsRegistry()
        reg.gauge("repro_test_g").set(7.0)
        assert "repro_test_g 7\n" in render_prometheus(reg)


class TestParse:
    def test_roundtrip(self):
        samples = parse_prometheus(render_prometheus(populated_registry()))
        assert samples["repro_test_tokens"][""] == 42
        assert samples["repro_test_tasks_total"]['outcome="ok"'] == 3
        assert samples["repro_test_seconds_bucket"]['le="+Inf"'] == 3
        assert samples["repro_test_seconds_count"][""] == 3

    def test_bad_line_rejected_with_line_number(self):
        with pytest.raises(ExpositionError) as err:
            parse_prometheus("repro_good 1\nthis is { not valid\n")
        assert "line 2" in str(err.value)

    def test_bad_value_rejected(self):
        with pytest.raises(ExpositionError):
            parse_prometheus("repro_x notanumber\n")


class TestServer:
    def test_serves_metrics_and_health(self):
        reg = populated_registry()
        with MetricsServer(0, registry=reg) as server:
            with urllib.request.urlopen(server.url + "/metrics") as resp:
                assert resp.headers["Content-Type"] == CONTENT_TYPE
                body = resp.read().decode("utf-8")
            assert parse_prometheus(body)["repro_test_tokens"][""] == 42

            with urllib.request.urlopen(server.url + "/healthz") as resp:
                health = json.loads(resp.read())
            assert health["status"] == "ok"

    def test_scrapes_see_live_updates(self):
        reg = MetricsRegistry()
        g = reg.gauge("repro_live_tokens")
        with MetricsServer(0, registry=reg) as server:
            def scrape():
                with urllib.request.urlopen(server.url + "/metrics") as resp:
                    text = resp.read().decode("utf-8")
                return parse_prometheus(text)["repro_live_tokens"][""]

            g.set(1)
            assert scrape() == 1
            g.set(99)
            assert scrape() == 99

    def test_unknown_path_404(self):
        with MetricsServer(0, registry=MetricsRegistry()) as server:
            with pytest.raises(urllib.error.HTTPError) as err:
                urllib.request.urlopen(server.url + "/nope")
            assert err.value.code == 404

    def test_stop_closes_port(self):
        server = MetricsServer(0, registry=MetricsRegistry())
        url = server.start() and server.url
        server.stop()
        with pytest.raises(urllib.error.URLError):
            urllib.request.urlopen(url + "/healthz", timeout=0.5)


class TestSnapshotDeterminism:
    def test_json_snapshot_identical_across_orders(self):
        a = populated_registry()
        b = MetricsRegistry()
        b.gauge("repro_test_tokens", "Current tokens").set(42)
        c = b.counter("repro_test_tasks_total", "Tasks seen",
                      labelnames=("outcome",))
        c.labels(outcome="failed").inc()
        c.labels(outcome="ok").inc(3)
        h = b.histogram("repro_test_seconds", "Durations", buckets=(1.0, 10.0))
        for v in (50.0, 0.5, 5.0):
            h.observe(v)
        assert json.dumps(a.snapshot(), sort_keys=True) == json.dumps(
            b.snapshot(), sort_keys=True
        )


class TestPredictionGauges:
    """The prediction observatory's module-level instruments land on the
    default registry and survive a render -> parse round trip."""

    def publish_and_score(self, predictor):
        from repro.telemetry import predict
        from repro.telemetry.metrics import REGISTRY

        record = predict.record_from_quantiles(
            tick=0, elapsed=60.0, progress=0.5, allocation=10,
            quantiles={
                q: 300.0 + 100.0 * (2.0 * q - 1.0)
                for q in predict.quantiles_for(predict.NOMINAL_LEVELS)
            },
        )
        predict.publish(record, predictor=predictor)
        predict.calibration([record], 360.0, predictor=predictor)
        return record, REGISTRY

    def sample(self, parsed, metric, predictor, level=None):
        wanted = [f'predictor="{predictor}"']
        if level is not None:
            wanted.append(f'level="{level}"')
        matches = [
            value for labels, value in parsed[metric].items()
            if all(w in labels for w in wanted)
        ]
        assert len(matches) == 1, (metric, wanted, parsed[metric])
        return matches[0]

    def test_roundtrip_includes_prediction_metrics(self):
        record, registry = self.publish_and_score("exposition-test")
        parsed = parse_prometheus(render_prometheus(registry))
        for metric in (
            "repro_prediction_interval_lo_seconds",
            "repro_prediction_interval_hi_seconds",
            "repro_prediction_median_seconds",
            "repro_prediction_coverage",
            "repro_prediction_ticks_total",
        ):
            assert metric in parsed, metric

        band = record.band(0.9)
        lo = self.sample(parsed, "repro_prediction_interval_lo_seconds",
                         "exposition-test", level="90")
        hi = self.sample(parsed, "repro_prediction_interval_hi_seconds",
                         "exposition-test", level="90")
        assert lo == pytest.approx(band.lo)
        assert hi == pytest.approx(band.hi)
        median = self.sample(parsed, "repro_prediction_median_seconds",
                             "exposition-test")
        assert median == pytest.approx(record.median)

    def test_scoring_sets_coverage_per_level(self):
        _record, registry = self.publish_and_score("exposition-cov")
        parsed = parse_prometheus(render_prometheus(registry))
        # The single record's 90% band covers the realized 360s.
        coverage = self.sample(parsed, "repro_prediction_coverage",
                               "exposition-cov", level="90")
        assert coverage == 1

    def test_served_metrics_expose_prediction_bands(self):
        _record, registry = self.publish_and_score("exposition-served")
        with MetricsServer(0, registry=registry) as server:
            with urllib.request.urlopen(server.url + "/metrics") as resp:
                body = resp.read().decode("utf-8")
        parsed = parse_prometheus(body)
        assert self.sample(
            parsed, "repro_prediction_ticks_total", "exposition-served"
        ) >= 1
