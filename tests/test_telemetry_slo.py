"""Tests for SLO attainment analytics and prediction scorecards.

The acceptance bar for the observatory: every number a report shows must be
reproducible by calling the analysis functions on the same audit records.
These tests run one real experiment and then recompute everything twice.
"""

import math

import pytest

from repro.experiments.runner import RunConfig, make_policy, run_experiment
from repro.experiments.scenarios import SMOKE, trained_job
from repro.telemetry import scorecard as scorecard_mod
from repro.telemetry.scorecard import Scorecard, quantile, scorecard_rows
from repro.telemetry.slo import (
    AT_RISK_THRESHOLD,
    RiskPoint,
    analyze_run,
    deadline_at,
    risk_timeline,
)


@pytest.fixture(scope="module")
def jockey_run():
    tj = trained_job("A", seed=0, scale=SMOKE)
    policy = make_policy("jockey", tj, tj.short_deadline)
    result = run_experiment(
        tj,
        policy,
        RunConfig(deadline_seconds=tj.short_deadline, seed=7,
                  sample_cluster_day=False),
    )
    return tj, result


class TestDeadlineAt:
    def test_no_schedule(self):
        assert deadline_at(100.0, 3600.0) == 3600.0

    def test_change_applies_at_and_after(self):
        schedule = ((600.0, 1800.0),)
        assert deadline_at(599.9, 3600.0, schedule) == 3600.0
        assert deadline_at(600.0, 3600.0, schedule) == 1800.0
        assert deadline_at(9999.0, 3600.0, schedule) == 1800.0

    def test_unsorted_schedule_applied_in_time_order(self):
        schedule = ((1200.0, 900.0), (600.0, 1800.0))
        assert deadline_at(700.0, 3600.0, schedule) == 1800.0
        assert deadline_at(1300.0, 3600.0, schedule) == 900.0


class TestQuantile:
    def test_median_odd(self):
        assert quantile([1.0, 2.0, 9.0], 0.5) == 2.0

    def test_interpolates(self):
        assert quantile([0.0, 10.0], 0.25) == 2.5

    def test_extremes(self):
        vals = [3.0, 5.0, 7.0]
        assert quantile(vals, 0.0) == 3.0
        assert quantile(vals, 1.0) == 7.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            quantile([], 0.5)

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            quantile([1.0], 1.5)


class TestScorecard:
    def test_error_sign_convention(self):
        # Predicting 100s remaining when 60s remained = +40 pessimistic.
        card = Scorecard.from_predictions("x", [(40.0, 100.0)], 100.0)
        assert card.points[0].realized_remaining == 60.0
        assert card.points[0].error == pytest.approx(40.0)
        assert card.bias_seconds == pytest.approx(40.0)

    def test_slack_divided_out(self):
        card = Scorecard.from_predictions(
            "x", [(0.0, 120.0)], 100.0, slack=1.2
        )
        assert card.points[0].predicted_remaining == pytest.approx(100.0)
        assert card.bias_seconds == pytest.approx(0.0)

    def test_predictions_past_duration_dropped(self):
        card = Scorecard.from_predictions(
            "x", [(0.0, 50.0), (150.0, 10.0)], 100.0
        )
        assert card.ticks == 1

    def test_quantiles_over_abs_errors(self):
        pairs = [(t, (100.0 - t) + e) for t, e in
                 [(0.0, -1.0), (10.0, 2.0), (20.0, -3.0), (30.0, 4.0)]]
        card = Scorecard.from_predictions("x", pairs, 100.0)
        assert card.p50_abs_error == pytest.approx(2.5)
        assert card.max_abs_error == pytest.approx(4.0)
        assert card.bias_seconds == pytest.approx(0.5)

    def test_empty_card_is_zeroed(self):
        card = Scorecard.from_predictions("x", [], 100.0)
        assert card.ticks == 0
        assert card.bias_seconds == 0.0
        assert card.p90_abs_error == 0.0

    def test_bad_duration_or_slack_rejected(self):
        with pytest.raises(ValueError):
            Scorecard.from_predictions("x", [], 0.0)
        with pytest.raises(ValueError):
            Scorecard.from_predictions("x", [], 100.0, slack=0.0)

    def test_merge_pools_points_and_averages_duration(self):
        a = Scorecard.from_predictions("a", [(0.0, 100.0)], 100.0)
        b = Scorecard.from_predictions("b", [(0.0, 190.0), (10.0, 200.0)], 200.0)
        merged = scorecard_mod.merge("pool", [a, b])
        assert merged.ticks == 3
        assert merged.duration == pytest.approx(150.0)

    def test_merge_empty_is_safe(self):
        merged = scorecard_mod.merge("pool", [])
        assert merged.ticks == 0
        assert merged.relative(merged.p90_abs_error) == 0.0

    def test_rows_match_headers(self):
        card = Scorecard.from_predictions("x", [(0.0, 90.0)], 100.0)
        rows = scorecard_rows([card])
        assert len(rows[0]) == len(scorecard_mod.SCORECARD_HEADERS)
        assert rows[0][0] == "x"
        assert rows[0][2] == pytest.approx(-10.0 / 60.0)  # bias in minutes


class TestRiskTimeline:
    def _record(self, elapsed, predicted, progress=None, allocation=10):
        # Duck-typed stand-in for a TickRecord: risk_timeline reads only
        # tick/elapsed/progress/allocation/predicted_remaining.
        class R:
            pass

        r = R()
        r.tick = 0
        r.elapsed = elapsed
        r.progress = progress
        r.allocation = allocation
        r.predicted_remaining = predicted
        return r

    def test_exhausted_budget_is_certain_miss(self):
        points = risk_timeline(
            [self._record(elapsed=200.0, predicted=1.0)], deadline=100.0
        )
        assert points[0].budget < 0
        assert points[0].risk == 1.0

    def test_binary_fallback_without_table(self):
        late = self._record(elapsed=0.0, predicted=150.0)
        fine = self._record(elapsed=0.0, predicted=50.0)
        points = risk_timeline([late, fine], deadline=100.0)
        assert [p.risk for p in points] == [1.0, 0.0]
        assert points[1].margin == pytest.approx(50.0)

    def test_table_exceedance_queried_at_unslacked_budget(self):
        calls = []

        class Table:
            def exceedance(self, progress, allocation, threshold):
                calls.append((progress, allocation, threshold))
                return 0.25

        points = risk_timeline(
            [self._record(elapsed=40.0, predicted=80.0, progress=0.5)],
            deadline=100.0, table=Table(), slack=1.2,
        )
        assert points[0].risk == 0.25
        assert calls == [(0.5, 10, pytest.approx(60.0 / 1.2))]

    def test_schedule_changes_budget(self):
        points = risk_timeline(
            [self._record(elapsed=30.0, predicted=10.0)],
            deadline=1000.0, schedule=((20.0, 50.0),),
        )
        assert points[0].budget == pytest.approx(20.0)

    def test_bad_slack_rejected(self):
        with pytest.raises(ValueError):
            risk_timeline([], deadline=100.0, slack=0.0)

    def test_at_risk_threshold(self):
        p = RiskPoint(tick=0, elapsed=0, progress=None, allocation=1,
                      predicted_remaining=0, budget=1, risk=AT_RISK_THRESHOLD)
        assert p.at_risk


class TestAnalyzeRun:
    def test_reproducible_from_same_records(self, jockey_run):
        tj, result = jockey_run
        a = result.slo_report(table=tj.table)
        b = result.slo_report(table=tj.table)
        assert a.summary() == b.summary()

    def test_verdict_matches_trace(self, jockey_run):
        tj, result = jockey_run
        slo = result.slo_report(table=tj.table)
        assert slo.met == result.trace.met_deadline()
        assert slo.duration == pytest.approx(result.trace.duration)
        assert slo.margin_seconds == pytest.approx(
            slo.deadline - slo.duration
        )

    def test_cost_side_consistent(self, jockey_run):
        tj, result = jockey_run
        slo = result.slo_report(table=tj.table)
        assert slo.cpu_seconds == pytest.approx(
            result.trace.total_cpu_seconds()
        )
        assert slo.oracle_tokens == math.ceil(slo.cpu_seconds / slo.deadline)
        assert slo.spend_ratio >= 1.0  # can never beat the oracle minimum
        assert slo.token_seconds == pytest.approx(
            result.trace.allocation_seconds()
        )

    def test_one_risk_point_per_audit_record(self, jockey_run):
        tj, result = jockey_run
        slo = result.slo_report(table=tj.table)
        assert len(slo.risk) == len(result.audit_records)
        for point, record in zip(slo.risk, result.audit_records):
            assert point.elapsed == record.elapsed
            assert point.allocation == record.allocation
            assert 0.0 <= point.risk <= 1.0

    def test_mid_run_deadline_change_judged_against_new_deadline(self):
        tj = trained_job("A", seed=0, scale=SMOKE)
        policy = make_policy("jockey", tj, tj.long_deadline)
        # One control period in: early enough that even a smoke-scale job
        # is still running when the extension lands.
        change_at = 60.0
        config = RunConfig(
            deadline_seconds=tj.long_deadline, seed=11,
            deadline_changes=((change_at, tj.long_deadline * 3),),
            sample_cluster_day=False,
        )
        result = run_experiment(tj, policy, config)
        slo = result.slo_report(table=tj.table)
        # Verdict uses the deadline in force at completion (the extension),
        # while early risk points are budgeted against the initial one.
        assert slo.deadline == pytest.approx(tj.long_deadline * 3)
        early = [p for p in slo.risk if p.elapsed < change_at]
        for point in early:
            assert point.budget == pytest.approx(
                tj.long_deadline - point.elapsed
            )

    def test_no_deadline_anywhere_rejected(self, jockey_run):
        import dataclasses

        _tj, result = jockey_run
        trace_no_deadline = dataclasses.replace(result.trace, deadline=None)
        with pytest.raises(ValueError):
            analyze_run(trace_no_deadline, [], policy="jockey")

    def test_audit_scorecard_reproducible(self, jockey_run):
        tj, result = jockey_run
        slack = result.control_config.slack
        card = scorecard_mod.from_audit(
            result.audit_records, result.trace.duration,
            name="jockey", slack=slack,
        )
        assert card.ticks == len(result.audit_records)
        # Recompute one point by hand from the raw record.
        record = result.audit_records[0]
        assert card.points[0].predicted_remaining == pytest.approx(
            record.predicted_remaining / slack
        )
        assert card.points[0].realized_remaining == pytest.approx(
            result.trace.duration - record.elapsed
        )
        assert card.summary() == scorecard_mod.from_audit(
            result.audit_records, result.trace.duration,
            name="jockey", slack=slack,
        ).summary()
