"""Unit tests for the four evaluation policies."""

import numpy as np
import pytest

from repro.core.control import ControlConfig
from repro.core.cpa import CpaTable
from repro.core.policies import (
    AmdahlPolicy,
    JockeyPolicy,
    MaxAllocationPolicy,
    NoAdaptationPolicy,
)
from repro.core.progress import totalwork
from repro.core.utility import deadline_utility
from repro.runtime.jobmanager import JobSnapshot
from tests.test_core_simulator import deterministic_profile


@pytest.fixture(scope="module")
def artifacts():
    profile = deterministic_profile()  # full runtime 15s at high allocation
    indicator = totalwork(profile)
    table = CpaTable.build(
        profile, indicator, np.random.default_rng(0),
        allocations=(1, 2, 4, 8), reps=3, num_bins=20, sample_dt=2.0,
    )
    return profile, indicator, table


def snapshot(fractions, elapsed, allocation=4):
    return JobSnapshot(fractions, elapsed, running=0, allocation=allocation)


def config():
    return ControlConfig(min_tokens=1, max_tokens=8, allocation_step=1,
                         slack=1.0, hysteresis=1.0, dead_zone_seconds=0.0)


class TestJockeyPolicy:
    def test_initial_allocation_meets_deadline(self, artifacts):
        profile, indicator, table = artifacts
        policy = JockeyPolicy(
            table, indicator, deadline_utility(30.0), config(), profile=profile
        )
        a0 = policy.initial_allocation()
        assert table.predicted_duration(a0, q=0.6) <= 30.0

    def test_adapts_on_tick(self, artifacts):
        profile, indicator, table = artifacts
        policy = JockeyPolicy(
            table, indicator, deadline_utility(80.0), config(), profile=profile
        )
        policy.initial_allocation()
        relaxed = policy.on_tick(snapshot({"map": 0.0, "reduce": 0.0}, 5.0))
        behind = policy.on_tick(snapshot({"map": 0.0, "reduce": 0.0}, 60.0))
        assert behind >= relaxed

    def test_respects_table_floor(self, artifacts):
        profile, indicator, table = artifacts
        policy = JockeyPolicy(
            table, indicator, deadline_utility(1000.0), config(), profile=profile
        )
        assert policy.initial_allocation() >= min(table.allocations)

    def test_change_utility(self, artifacts):
        profile, indicator, table = artifacts
        policy = JockeyPolicy(
            table, indicator, deadline_utility(80.0), config(), profile=profile
        )
        policy.initial_allocation()
        before = policy.on_tick(snapshot({"map": 0.0, "reduce": 0.0}, 0.0))
        policy.change_utility(deadline_utility(20.0))
        after = policy.on_tick(snapshot({"map": 0.0, "reduce": 0.0}, 0.0))
        assert after >= before

    def test_last_decision_exposed(self, artifacts):
        profile, indicator, table = artifacts
        policy = JockeyPolicy(
            table, indicator, deadline_utility(80.0), config(), profile=profile
        )
        assert policy.last_decision() is None
        policy.initial_allocation()
        policy.on_tick(snapshot({"map": 0.5, "reduce": 0.0}, 10.0))
        assert policy.last_decision() is not None

    def test_is_adaptive(self, artifacts):
        profile, indicator, table = artifacts
        policy = JockeyPolicy(
            table, indicator, deadline_utility(80.0), config(), profile=profile
        )
        assert policy.adaptive
        assert policy.name == "jockey"


class TestNoAdaptationPolicy:
    def test_static_allocation(self, artifacts):
        profile, indicator, table = artifacts
        policy = NoAdaptationPolicy(
            table, indicator, deadline_utility(30.0), config(), profile=profile
        )
        first = policy.initial_allocation()
        assert policy.initial_allocation() == first
        assert policy.on_tick(snapshot({"map": 0.0, "reduce": 0.0}, 1e6)) is None

    def test_not_adaptive(self, artifacts):
        profile, indicator, table = artifacts
        policy = NoAdaptationPolicy(
            table, indicator, deadline_utility(30.0), config(), profile=profile
        )
        assert not policy.adaptive


class TestAmdahlPolicy:
    def test_uses_amdahl_model(self, artifacts):
        profile, _indicator, _table = artifacts
        policy = AmdahlPolicy(profile, deadline_utility(40.0), config())
        # Amdahl: S=15, P=70 -> at deadline 40 needs 70/25 = 2.8 -> 3.
        assert policy.initial_allocation() == 3

    def test_adapts(self, artifacts):
        profile, _indicator, _table = artifacts
        policy = AmdahlPolicy(profile, deadline_utility(40.0), config())
        policy.initial_allocation()
        behind = policy.on_tick(snapshot({"map": 0.0, "reduce": 0.0}, 30.0))
        assert behind == 8  # pegged to max: impossible to finish in time


class TestMaxAllocationPolicy:
    def test_constant(self):
        policy = MaxAllocationPolicy(100)
        assert policy.initial_allocation() == 100
        assert policy.on_tick(snapshot({}, 0.0)) is None
        assert not policy.adaptive

    def test_invalid(self):
        with pytest.raises(ValueError):
            MaxAllocationPolicy(0)
