"""CLI tests for the performance observatory (`repro perf ...`), plus the
determinism contract: perf collection must never change simulation
results."""

import json
import pathlib
import re

import pytest

from tests.test_cli import run_cli


@pytest.fixture(scope="module")
def bundle(tmp_path_factory):
    path = tmp_path_factory.mktemp("perf_cli") / "bundle.json"
    code, text = run_cli(
        "train", "--job", "mapreduce", "--out", str(path),
        "--cpa-reps", "2", "--seed", "4",
    )
    assert code == 0
    assert "saved bundle" in text
    return path


class TestPerfRun:
    def test_breakdown_sums_to_at_least_ninety_percent_of_wall(self, bundle):
        code, text = run_cli(
            "perf", "run", "--bundle", str(bundle),
            "--deadline-minutes", "60", "--seed", "2",
        )
        assert code == 0
        assert "MET" in text
        assert "phase breakdown" in text
        for phase in ("load", "simulate", "report"):
            assert phase in text
        match = re.search(
            r"top-level phases sum to [^=]+= ([0-9.]+)% of wall", text
        )
        assert match, f"no coverage line in output:\n{text}"
        assert float(match.group(1)) >= 90.0, (
            "instrumented phases cover too little of the measured wall "
            f"time:\n{text}"
        )
        assert "events/sec over the simulate phase" in text

    def test_missed_deadline_exits_one(self, bundle):
        code, text = run_cli(
            "perf", "run", "--bundle", str(bundle),
            "--deadline-minutes", "1", "--seed", "2",
        )
        assert code == 1
        assert "MISSED" in text

    def test_json_out_digest_is_schema_stamped(self, bundle, tmp_path):
        digest_path = tmp_path / "perf.json"
        code, _text = run_cli(
            "perf", "run", "--bundle", str(bundle),
            "--deadline-minutes", "60", "--seed", "2",
            "--json-out", str(digest_path),
        )
        assert code == 0
        doc = json.loads(digest_path.read_text())
        assert doc["kind"] == "perf_run"
        assert doc["schema_version"] >= 2
        assert set(doc["host"]) == {"cpu_count", "python", "platform"}
        assert doc["met_deadline"] is True
        assert doc["events_per_sec"] > 0
        phases = doc["perf"]["phases"]
        assert {"load", "simulate", "report"} <= set(phases)
        assert doc["perf"]["counters"]["simkit.events_dispatched"] > 0
        assert "control.tick" in doc["perf"]["timers"]

    def test_profile_out_writes_collapsed_stacks(self, bundle, tmp_path):
        folded = tmp_path / "run.folded"
        code, text = run_cli(
            "perf", "run", "--bundle", str(bundle),
            "--deadline-minutes", "60", "--seed", "2",
            "--profile-out", str(folded), "--profile-top", "5",
        )
        assert code == 0
        assert "wrote collapsed stacks" in text
        assert "cumtime" in text  # --profile-top summary table
        lines = folded.read_text().splitlines()
        assert lines
        assert all(line.rsplit(" ", 1)[1].isdigit() for line in lines)
        assert any(";" in line for line in lines), "no caller;callee edges"

    def test_report_out_gains_performance_section(self, bundle, tmp_path):
        report = tmp_path / "report.html"
        code, text = run_cli(
            "perf", "run", "--bundle", str(bundle),
            "--deadline-minutes", "60", "--seed", "2",
            "--report-out", str(report),
        )
        assert code == 0
        assert "wrote" in text
        html = report.read_text(encoding="utf-8")
        assert "Performance" in html
        assert "events/sec (simulate)" in html
        assert "phase simulate [s]" in html


class TestPerfReport:
    def test_renders_perf_run_digest(self, bundle, tmp_path):
        digest_path = tmp_path / "perf.json"
        code, _text = run_cli(
            "perf", "run", "--bundle", str(bundle),
            "--deadline-minutes", "60", "--seed", "2",
            "--json-out", str(digest_path),
        )
        assert code == 0
        code, text = run_cli("perf", "report", str(digest_path))
        assert code == 0
        assert "perf run digest" in text
        assert "phase breakdown" in text

    def test_renders_committed_sim_scale_digest(self):
        committed = (
            pathlib.Path(__file__).parent.parent
            / "results" / "bench_sim_scale.json"
        )
        assert committed.exists(), (
            "results/bench_sim_scale.json must be committed "
            "(run benchmarks/bench_sim_scale.py)"
        )
        doc = json.loads(committed.read_text())
        assert doc["schema_version"] >= 2
        assert len(doc["sizes"]) >= 3
        code, text = run_cli("perf", "report", str(committed))
        assert code == 0
        assert "bench_sim_scale digest" in text
        assert "events/sec" in text

    def test_renders_generic_bench_digest_as_key_values(self, tmp_path):
        # Other bench digests (cpa_build, cpa_query, ...) fall back to a
        # flat key/value listing.
        from repro.perf.digest import write_digest

        path = tmp_path / "bench_other.json"
        write_digest(path, {"benchmark": "cpa_build", "speedup": 3.1})
        code, text = run_cli("perf", "report", str(path))
        assert code == 0
        assert "benchmark: cpa_build" in text
        assert "speedup: 3.1" in text

    def test_missing_digest_exits_one(self, tmp_path):
        code, text = run_cli("perf", "report", str(tmp_path / "nope.json"))
        assert code == 1
        assert "error" in text

    def test_corrupt_digest_exits_one(self, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text("not json{")
        code, text = run_cli("perf", "report", str(bad))
        assert code == 1
        assert "error" in text


def _scale_digest(path, eps_by_size, tolerance=0.15):
    from repro.perf.digest import write_digest

    write_digest(path, {
        "benchmark": "sim_scale",
        "tolerance": tolerance,
        "sizes": [
            {"events": events, "events_per_sec": eps,
             "wall_seconds": events / eps, "peak_rss_kb": 1000}
            for events, eps in eps_by_size.items()
        ],
    })
    return path


class TestPerfCompare:
    def test_committed_digest_vs_itself_is_flat(self):
        committed = (
            pathlib.Path(__file__).parent.parent
            / "results" / "bench_sim_scale.json"
        )
        code, text = run_cli(
            "perf", "compare", str(committed), str(committed)
        )
        assert code == 0
        assert "+0.0%" in text
        assert "ok: no size regressed" in text

    def test_regression_flags_size_and_exits_one(self, tmp_path):
        old = _scale_digest(
            tmp_path / "old.json", {1000: 100_000.0, 10_000: 90_000.0}
        )
        new = _scale_digest(
            tmp_path / "new.json", {1000: 40_000.0, 10_000: 95_000.0}
        )
        code, text = run_cli("perf", "compare", str(old), str(new))
        assert code == 1
        assert "REGRESSED" in text
        assert "-60.0%" in text
        assert "1 size(s) regressed" in text

    def test_improvement_reports_positive_delta(self, tmp_path):
        old = _scale_digest(tmp_path / "old.json", {1000: 100_000.0})
        new = _scale_digest(tmp_path / "new.json", {1000: 250_000.0})
        code, text = run_cli("perf", "compare", str(old), str(new))
        assert code == 0
        assert "+150.0%" in text

    def test_tolerance_flag_overrides_digest(self, tmp_path):
        old = _scale_digest(tmp_path / "old.json", {1000: 100_000.0})
        new = _scale_digest(tmp_path / "new.json", {1000: 90_000.0})
        code, _text = run_cli("perf", "compare", str(old), str(new))
        assert code == 0  # 10% drop within the default 15%
        code, text = run_cli(
            "perf", "compare", str(old), str(new), "--tolerance", "0.05"
        )
        assert code == 1
        assert "REGRESSED" in text

    def test_extra_sizes_are_noted_and_skipped(self, tmp_path):
        old = _scale_digest(tmp_path / "old.json", {1000: 100_000.0})
        new = _scale_digest(
            tmp_path / "new.json", {1000: 100_000.0, 10_000: 90_000.0}
        )
        code, text = run_cli("perf", "compare", str(old), str(new))
        assert code == 0
        assert "only in new digest; skipped" in text

    def test_disjoint_sizes_error(self, tmp_path):
        old = _scale_digest(tmp_path / "old.json", {1000: 100_000.0})
        new = _scale_digest(tmp_path / "new.json", {2000: 100_000.0})
        code, text = run_cli("perf", "compare", str(old), str(new))
        assert code == 1
        assert "share no run sizes" in text

    def test_missing_file_exits_one(self, tmp_path):
        committed = (
            pathlib.Path(__file__).parent.parent
            / "results" / "bench_sim_scale.json"
        )
        code, text = run_cli(
            "perf", "compare", str(tmp_path / "nope.json"), str(committed)
        )
        assert code == 1
        assert "error" in text


class TestPerfUsageErrors:
    def test_perf_without_subcommand_exits_two(self):
        code, _text = run_cli("perf")
        assert code == 2

    def test_perf_run_without_bundle_exits_two(self):
        code, _text = run_cli("perf", "run", "--deadline-minutes", "10")
        assert code == 2

    def test_perf_run_with_missing_bundle_exits_two(self, tmp_path):
        code, text = run_cli(
            "perf", "run", "--bundle", str(tmp_path / "nope.json"),
            "--deadline-minutes", "10",
        )
        assert code == 2
        assert "cannot load" in text

    def test_perf_run_help_matches_golden(self, monkeypatch, capsys):
        monkeypatch.setenv("COLUMNS", "80")
        code, _text = run_cli("perf", "run", "--help")
        assert code == 0
        got = capsys.readouterr().out
        golden = pathlib.Path(__file__).parent / "golden" / "perf_help.txt"
        assert got == golden.read_text(encoding="utf-8"), (
            "help text drifted; regenerate tests/golden/perf_help.txt "
            "(COLUMNS=80) if the change is intentional"
        )


class TestDeterminismContract:
    """Installing a perf collector must not perturb a simulation: the CLI
    run's trace and metrics files must come out byte-identical."""

    def _run_with_outputs(self, bundle, outdir):
        jsonl = outdir / "trace.jsonl"
        metrics = outdir / "metrics.json"
        code, _text = run_cli(
            "run", "--bundle", str(bundle), "--deadline-minutes", "60",
            "--seed", "2",
            "--trace-jsonl", str(jsonl), "--metrics-out", str(metrics),
        )
        assert code == 0
        return jsonl.read_bytes(), metrics.read_bytes()

    def test_runs_byte_identical_with_and_without_collector(
        self, bundle, tmp_path
    ):
        from repro.perf import instrument

        off_dir = tmp_path / "off"
        on_dir = tmp_path / "on"
        off_dir.mkdir()
        on_dir.mkdir()

        off_trace, off_metrics = self._run_with_outputs(bundle, off_dir)
        with instrument.collecting() as perf:
            on_trace, on_metrics = self._run_with_outputs(bundle, on_dir)

        assert off_trace == on_trace, (
            "perf collection changed the simulation trace"
        )
        assert off_metrics == on_metrics, (
            "perf collection changed the metrics snapshot"
        )
        # ...and the collector really was live during the second run.
        snap = perf.snapshot()
        assert snap["counters"].get("simkit.events_dispatched", 0) > 0

    def test_perf_run_matches_plain_run_verdict(self, bundle):
        code_plain, text_plain = run_cli(
            "run", "--bundle", str(bundle), "--deadline-minutes", "60",
            "--seed", "7",
        )
        code_perf, text_perf = run_cli(
            "perf", "run", "--bundle", str(bundle),
            "--deadline-minutes", "60", "--seed", "7",
        )
        assert code_plain == code_perf
        pattern = r"finished in ([0-9.]+) (?:virtual )?min"
        plain_min = re.search(pattern, text_plain)
        perf_min = re.search(pattern, text_perf)
        assert plain_min and perf_min
        assert plain_min.group(1) == perf_min.group(1), (
            "perf run diverged from plain run on the same seed"
        )
