"""Unit tests for the cProfile wrapper (repro.perf.profile)."""

import re

import pytest

from repro.perf.profile import ProfileSession, profiling


def _burn(n: int = 20_000) -> int:
    total = 0
    for i in range(n):
        total += i * i
    return total


def _work() -> int:
    return _burn() + _burn()


class TestSessionLifecycle:
    def test_double_start_raises(self):
        session = ProfileSession()
        session.start()
        with pytest.raises(RuntimeError):
            session.start()
        session.stop()

    def test_stop_without_start_raises(self):
        with pytest.raises(RuntimeError):
            ProfileSession().stop()

    def test_exports_require_stopped_session(self):
        session = ProfileSession()
        with pytest.raises(RuntimeError):
            session.collapsed_stacks()
        session.start()
        _work()
        session.stop()
        assert session.stopped
        assert session.collapsed_stacks()


class TestCollapsedStacks:
    def test_lines_are_edges_with_integer_weights(self):
        session = ProfileSession()
        session.start()
        _work()
        session.stop()
        lines = session.collapsed_stacks().splitlines()
        assert lines, "profiled work produced no stacks"
        # Every line ends in an integer microsecond weight; frame names may
        # contain spaces (builtin method descriptors).
        assert all(
            re.match(r"^\d+$", line.rsplit(" ", 1)[1]) for line in lines
        ), lines[:5]
        assert lines == sorted(lines)
        joined = "\n".join(lines)
        # The caller;callee edge for our hot pair, with basename frames.
        assert "(_work);" in joined
        assert "(_burn)" in joined
        assert "test_perf_profile.py" in joined
        assert not any(
            line.startswith("/") for line in lines
        ), "absolute paths leaked into frame names"

    def test_profiling_contextmanager_writes_file(self, tmp_path):
        out = tmp_path / "run.folded"
        with profiling(str(out)) as session:
            _work()
        assert session.stopped
        content = out.read_text()
        assert content == session.collapsed_stacks()
        assert "(_burn)" in content


class TestTextSummary:
    def test_summary_structure_and_ordering(self):
        session = ProfileSession()
        session.start()
        _work()
        session.stop()
        text = session.text_summary(top=10)
        lines = text.splitlines()
        assert lines[0].startswith("profile: ")
        assert lines[2] == (
            f"{'cumtime':>10s} {'selftime':>10s} {'calls':>10s}  function"
        )
        assert lines[3] == "-" * 72
        rows = lines[4:]
        assert 0 < len(rows) <= 10
        cumtimes = [float(row.split()[0]) for row in rows]
        assert cumtimes == sorted(cumtimes, reverse=True)

    def test_function_totals_reports_hot_function(self):
        session = ProfileSession()
        session.start()
        _work()
        session.stop()
        totals = session.function_totals()
        burn = [v for k, v in totals.items() if "(_burn)" in k]
        work = [v for k, v in totals.items() if "(_work)" in k]
        assert burn and work
        # _work's cumulative time includes both _burn calls.
        assert work[0] >= burn[0] * 0.9
