"""Unit tests for experiment metrics and text reporting."""

import pytest

from repro.experiments.metrics import (
    RunMetrics,
    cdf_points,
    coefficient_of_variation,
    group_by,
    metrics_from_trace,
    percentiles,
    summarize_policy,
)
from repro.experiments.reporting import (
    ExperimentReport,
    ascii_cdf,
    ascii_table,
    format_cell,
    sparkline,
)
from repro.jobs.trace import RunTrace, TaskRecord


class TestBasicStats:
    def test_cov(self):
        assert coefficient_of_variation([10.0, 10.0, 10.0]) == 0.0
        assert coefficient_of_variation([5.0, 15.0]) == pytest.approx(0.5)

    def test_cov_needs_samples(self):
        with pytest.raises(ValueError):
            coefficient_of_variation([1.0])

    def test_cov_zero_mean(self):
        with pytest.raises(ValueError):
            coefficient_of_variation([0.0, 0.0])

    def test_percentiles(self):
        values = list(range(101))
        assert percentiles(values, (50, 90)) == [50.0, 90.0]

    def test_percentiles_empty(self):
        with pytest.raises(ValueError):
            percentiles([], (50,))

    def test_cdf_points(self):
        points = cdf_points([3.0, 1.0, 2.0])
        assert points == [(1.0, 1 / 3), (2.0, 2 / 3), (3.0, 1.0)]

    def test_cdf_empty(self):
        assert cdf_points([]) == []


def make_trace(duration=600.0, deadline=1200.0, allocation=10, cpu=3000.0):
    trace = RunTrace(job_name="j", start_time=0.0, deadline=deadline)
    trace.mark_allocation(0.0, allocation)
    trace.add(TaskRecord("s", 0, 0, 0.0, 0.0, cpu))
    trace.end_time = duration
    return trace


class TestRunMetrics:
    def test_metrics_from_trace(self):
        # cpu 3000s, deadline 1200s -> oracle ceil(2.5) = 3 tokens.
        metrics = metrics_from_trace(make_trace(), policy="jockey")
        assert metrics.oracle_tokens == 3
        assert metrics.met_deadline
        assert metrics.relative_latency == pytest.approx(0.5)
        # allocation 10 for 600s = 6000 token-seconds; above-oracle part
        # (10-3)*600 = 4200 -> impact 0.7.
        assert metrics.impact_above_oracle == pytest.approx(0.7)

    def test_requires_deadline(self):
        trace = make_trace()
        trace.deadline = None
        with pytest.raises(ValueError):
            metrics_from_trace(trace, policy="x")

    def test_summarize_policy(self):
        runs = [
            metrics_from_trace(make_trace(duration=600.0), policy="p"),
            metrics_from_trace(make_trace(duration=1300.0), policy="p"),
        ]
        summary = summarize_policy(runs)
        assert summary.runs == 2
        assert summary.fraction_missed == 0.5
        assert summary.fraction_met == 0.5

    def test_summarize_rejects_mixed(self):
        runs = [
            metrics_from_trace(make_trace(), policy="a"),
            metrics_from_trace(make_trace(), policy="b"),
        ]
        with pytest.raises(ValueError):
            summarize_policy(runs)

    def test_summarize_rejects_empty(self):
        with pytest.raises(ValueError):
            summarize_policy([])

    def test_group_by(self):
        runs = [
            metrics_from_trace(make_trace(), policy="a"),
            metrics_from_trace(make_trace(), policy="b"),
            metrics_from_trace(make_trace(), policy="a"),
        ]
        grouped = group_by(runs, lambda m: m.policy)
        assert len(grouped["a"]) == 2
        assert len(grouped["b"]) == 1


class TestReporting:
    def test_ascii_table_aligns(self):
        text = ascii_table(["name", "value"], [["a", 1], ["bcd", 22.5]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert len(set(len(line) for line in lines)) == 1

    def test_ascii_table_rejects_ragged_rows(self):
        with pytest.raises(ValueError):
            ascii_table(["a", "b"], [["only-one"]])

    def test_format_cell(self):
        assert format_cell(3) == "3"
        assert format_cell(3.14159) == "3.14"
        assert format_cell(2.0) == "2"
        assert format_cell(1234.6) == "1,235"
        assert format_cell(float("nan")) == "nan"

    def test_ascii_cdf(self):
        text = ascii_cdf({"x": [1.0, 2.0, 3.0]}, points=(50,))
        assert "p50" in text and "x" in text

    def test_ascii_cdf_empty_series(self):
        with pytest.raises(ValueError):
            ascii_cdf({"x": []})

    def test_report_render(self):
        report = ExperimentReport("fig0", "demo", headers=["a"], rows=[])
        report.add_row(1)
        report.add_note("hello")
        report.add_section("extra text")
        text = report.render()
        assert "fig0" in text and "hello" in text and "extra text" in text

    def test_sparkline_length_and_chars(self):
        line = sparkline([0, 1, 2, 3, 4, 5], width=6)
        assert len(line) == 6
        assert line[0] == "▁" and line[-1] == "█"

    def test_sparkline_downsamples(self):
        assert len(sparkline(list(range(1000)), width=40)) == 40

    def test_sparkline_empty(self):
        assert sparkline([]) == ""

    def test_sparkline_constant(self):
        assert set(sparkline([5, 5, 5])) <= set("▁▂▃▄▅▆▇█ ")
