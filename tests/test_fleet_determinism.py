"""Determinism and acceptance properties of the ``exp_fleet`` sweep.

The digest must be byte-identical at any worker count, and the sweep must
land the ISSUE's acceptance shape: under injected drift the blended
update policy attains at least the stale-profile arm with the fresh
oracle as the upper bound — and the drift-gated arms never rebuild on a
calm (pre-drift) day.
"""

import hashlib
import json
import os

import pytest

from repro.experiments import SMOKE
from repro.experiments import exp_fleet


@pytest.fixture(scope="module")
def fleet_cache(tmp_path_factory):
    """Both sweep runs share one content-addressed cache: the second run
    (different worker count) must not depend on build locality."""
    cache = tmp_path_factory.mktemp("fleet_exp_cache")
    old = os.environ.get("REPRO_CACHE_DIR")
    os.environ["REPRO_CACHE_DIR"] = str(cache)
    try:
        yield cache
    finally:
        if old is None:
            os.environ.pop("REPRO_CACHE_DIR", None)
        else:
            os.environ["REPRO_CACHE_DIR"] = old


def _sweep_digest(tmp, jobs: str) -> bytes:
    old_jobs = os.environ.get("REPRO_JOBS")
    old_cwd = os.getcwd()
    os.environ["REPRO_JOBS"] = jobs
    os.chdir(tmp)
    try:
        exp_fleet.run(SMOKE, seed=0)
        return (tmp / exp_fleet.DIGEST_PATH).read_bytes()
    finally:
        os.chdir(old_cwd)
        if old_jobs is None:
            os.environ.pop("REPRO_JOBS", None)
        else:
            os.environ["REPRO_JOBS"] = old_jobs


@pytest.fixture(scope="module")
def digest_serial(fleet_cache, tmp_path_factory):
    return _sweep_digest(tmp_path_factory.mktemp("fleet_serial"), jobs="1")


class TestSweepDigest:
    def test_digest_identical_across_worker_counts(
        self, digest_serial, fleet_cache, tmp_path_factory
    ):
        parallel = _sweep_digest(
            tmp_path_factory.mktemp("fleet_parallel"), jobs="2"
        )
        assert (
            hashlib.sha256(digest_serial).hexdigest()
            == hashlib.sha256(parallel).hexdigest()
        )

    def test_update_policies_beat_stale_under_drift(self, digest_serial):
        """The ISSUE's acceptance ordering on post-drift attainment:
        stale <= blended <= oracle."""
        digest = json.loads(digest_serial.decode("utf-8"))
        post = {
            agg["arm"]: agg["attainment_post_drift"]
            for agg in digest["aggregates"]
        }
        assert post["blended"] >= post["stale"]
        assert post["oracle"] >= post["blended"]
        assert post["latest"] >= post["stale"]

    def test_drift_aware_arms_cost_less_than_cold_start(self, digest_serial):
        digest = json.loads(digest_serial.decode("utf-8"))
        cost = {
            agg["arm"]: agg["profiling_runs"]
            for agg in digest["aggregates"]
        }
        assert cost["blended"] < cost["cold-start"]
        assert cost["latest"] < cost["cold-start"]

    def test_no_rebuilds_before_drift(self, digest_serial):
        """Warm-path acceptance: drift-gated arms rebuild nothing while
        the workload is calm."""
        digest = json.loads(digest_serial.decode("utf-8"))
        calm = [
            r for r in digest["runs"]
            if r["arm"] in ("stale", "latest", "blended")
            and r["day"] < digest["drift"]["day"]
        ]
        assert calm
        assert all(not r["rebuilt"] for r in calm)
        assert all(not r["drift_significant"] for r in calm)

    def test_drift_detected_after_injection(self, digest_serial):
        digest = json.loads(digest_serial.decode("utf-8"))
        for arm in ("latest", "blended"):
            hits = [
                r["day"] for r in digest["runs"]
                if r["arm"] == arm and r["drift_significant"]
            ]
            assert hits, arm
            assert min(hits) >= digest["drift"]["day"], arm

    def test_digest_records_every_run(self, digest_serial):
        digest = json.loads(digest_serial.decode("utf-8"))
        assert digest["experiment"] == "fleet"
        assert digest["arms"] == list(exp_fleet.ARMS)
        expected = len(exp_fleet.ARMS) * len(SMOKE.jobs) * exp_fleet.DAYS
        assert len(digest["runs"]) == expected
        assert len(digest["summaries"]) == len(exp_fleet.ARMS) * len(
            SMOKE.jobs
        )

    def test_staleness_ordering(self, digest_serial):
        """Cold-start is always fresh; stale ages linearly; the drift-gated
        arms sit in between."""
        digest = json.loads(digest_serial.decode("utf-8"))
        staleness = {
            agg["arm"]: agg["mean_staleness_days"]
            for agg in digest["aggregates"]
        }
        assert staleness["cold-start"] == 0.0
        assert staleness["stale"] == max(staleness.values())
        assert (
            staleness["cold-start"]
            <= staleness["blended"]
            <= staleness["stale"]
        )
