"""Tests for the single-file HTML/text run report.

Acceptance: the report is fully self-contained (no external fetches) and
every headline number it shows is reproduced exactly by the analysis
functions run on the same audit records.
"""

import re
import xml.etree.ElementTree as ET

import pytest

from repro.experiments.runner import RunConfig, make_policy, run_experiment
from repro.experiments.scenarios import SMOKE, trained_job
from repro.telemetry import report as report_mod
from repro.telemetry.report import ReportError, RunReport, render_html, render_text


@pytest.fixture(scope="module")
def jockey_run():
    tj = trained_job("A", seed=0, scale=SMOKE)
    policy = make_policy("jockey", tj, tj.short_deadline)
    result = run_experiment(
        tj,
        policy,
        RunConfig(deadline_seconds=tj.short_deadline, seed=7,
                  capture_trace=True, sample_cluster_day=False),
    )
    return tj, result


@pytest.fixture(scope="module")
def html_report(jockey_run):
    tj, result = jockey_run
    report = report_mod.from_result(result, table=tj.table)
    return report, render_html(report)


class TestSelfContained:
    def test_no_external_references(self, html_report):
        _report, html = html_report
        assert "<script" not in html.lower()
        assert " src=" not in html
        assert "href=" not in html
        assert "url(" not in html
        assert "@import" not in html

    def test_svg_figures_parse(self, html_report):
        _report, html = html_report
        svgs = re.findall(r"<svg.*?</svg>", html, re.S)
        assert len(svgs) >= 2  # allocation + progress at minimum
        for svg in svgs:
            ET.fromstring(svg)  # well-formed XML

    def test_dark_mode_styles_present(self, html_report):
        _report, html = html_report
        assert "prefers-color-scheme: dark" in html


class TestNumbersMatchAnalysis:
    def test_verdict_and_margin_in_html(self, jockey_run, html_report):
        tj, result = jockey_run
        report, html = html_report
        slo = result.slo_report(table=tj.table)
        assert report.slo.summary() == slo.summary()
        assert slo.verdict in html
        assert f"{slo.duration / 60:.1f}" in html

    def test_scorecard_numbers_in_html(self, html_report):
        report, html = html_report
        for card in report.scorecards:
            if card.ticks:
                assert f"<td>{card.bias_seconds / 60:.2f}</td>" in html
                assert f"<td>{card.p90_abs_error / 60:.2f}</td>" in html

    def test_series_come_from_the_run(self, jockey_run, html_report):
        _tj, result = jockey_run
        report, _html = html_report
        assert [a for _t, a in report.allocation_series] == [
            a for _t, a in result.trace.allocation_timeline
        ]


class TestTextFallback:
    def test_text_renders_same_verdict(self, jockey_run, html_report):
        tj, result = jockey_run
        report, _html = html_report
        text = render_text(report)
        slo = result.slo_report(table=tj.table)
        assert slo.verdict in text
        assert report.title in text


class TestWrite:
    def test_html_extension_selects_html(self, html_report, tmp_path):
        report, _html = html_report
        path = tmp_path / "r.html"
        assert report_mod.write(report, str(path)) == "html"
        assert path.read_text(encoding="utf-8").startswith("<!DOCTYPE html>")

    def test_other_extension_selects_text(self, html_report, tmp_path):
        report, _html = html_report
        path = tmp_path / "r.txt"
        assert report_mod.write(report, str(path)) == "text"
        assert report.slo.verdict in path.read_text(encoding="utf-8")


class TestFromTraceEvents:
    def test_reproduces_run_from_events_alone(self, jockey_run):
        tj, result = jockey_run
        rebuilt = report_mod.from_trace_events(
            result.trace_events, policy="jockey", table=tj.table,
            slack=result.control_config.slack,
        )
        direct = result.slo_report(table=tj.table)
        assert rebuilt.slo.verdict == direct.verdict
        assert rebuilt.slo.duration == pytest.approx(direct.duration)
        assert rebuilt.slo.deadline == pytest.approx(direct.deadline)
        assert rebuilt.slo.cpu_seconds == pytest.approx(direct.cpu_seconds)

    def test_empty_events_rejected(self):
        with pytest.raises(ReportError):
            report_mod.from_trace_events([], policy="jockey")

    def test_rebuilt_report_renders(self, jockey_run):
        tj, result = jockey_run
        rebuilt = report_mod.from_trace_events(
            result.trace_events, policy="jockey", table=tj.table,
            slack=result.control_config.slack,
        )
        html = render_html(rebuilt)
        assert rebuilt.slo.verdict in html


class TestRunReportShape:
    def test_is_plain_dataclass(self, html_report):
        report, _html = html_report
        assert isinstance(report, RunReport)
        assert report.slo is not None
        assert report.notes  # from_result always records runtime scale


class TestFleetSection:
    def _summary(self):
        return {
            "template": "A", "mode": "ewma", "days": 8,
            "attainment": 0.9375, "rebuilds": 2, "drift_detections": 1,
            "profiling_runs": 2, "mean_staleness_days": 1.5,
            "final_generation": 8, "deadline_minutes": 22.0,
        }

    def test_rows_from_summary_labels(self):
        rows = report_mod.fleet_rows_from_summary(self._summary())
        labels = [label for label, _value in rows]
        assert "SLO attainment" in labels
        assert "model rebuilds" in labels
        assert ("SLO attainment", 0.9375) in rows

    def test_rows_skip_missing_keys(self):
        rows = report_mod.fleet_rows_from_summary({"days": 3})
        assert rows == (("days simulated", 3.0),)

    def test_extra_sections_render_in_both_formats(self, jockey_run):
        tj, result = jockey_run
        import dataclasses

        report = dataclasses.replace(
            report_mod.from_result(result, table=tj.table),
            extra_sections=(
                (
                    "fleet: A (ewma)",
                    report_mod.fleet_rows_from_summary(self._summary()),
                ),
            ),
        )
        html = render_html(report)
        assert "fleet: A (ewma)" in html
        assert "mean model staleness [days]" in html
        text = render_text(report)
        assert "fleet: A (ewma)" in text
        assert "SLO attainment" in text

    def test_empty_sections_are_skipped(self, jockey_run):
        tj, result = jockey_run
        import dataclasses

        report = dataclasses.replace(
            report_mod.from_result(result, table=tj.table),
            extra_sections=(("hollow", ()),),
        )
        assert "hollow" not in render_html(report)
        assert "hollow" not in render_text(report)
