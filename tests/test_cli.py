"""Unit tests for the command-line interface."""

import io

import pytest

from repro.cli import EXPERIMENTS, build_parser, main


def run_cli(*argv):
    out = io.StringIO()
    code = main(list(argv), out=out)
    return code, out.getvalue()


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_train_requires_out(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["train"])

    def test_experiment_validates_id(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["experiment", "fig99"])


class TestListExperiments:
    def test_lists_all(self):
        code, text = run_cli("list-experiments")
        assert code == 0
        for exp_id in EXPERIMENTS:
            assert exp_id in text


class TestTrainAndRun:
    @pytest.fixture(scope="class")
    def bundle(self, tmp_path_factory):
        path = tmp_path_factory.mktemp("cli") / "bundle.json"
        code, text = run_cli(
            "train", "--job", "mapreduce", "--out", str(path),
            "--cpa-reps", "2", "--seed", "4",
        )
        assert code == 0
        assert "saved bundle" in text
        return path

    def test_unknown_job_rejected(self, tmp_path):
        code, text = run_cli(
            "train", "--job", "Z", "--out", str(tmp_path / "x.json")
        )
        assert code == 2
        assert "unknown job" in text

    def test_run_meets_generous_deadline(self, bundle):
        code, text = run_cli(
            "run", "--bundle", str(bundle), "--deadline-minutes", "60",
            "--seed", "2",
        )
        assert code == 0
        assert "MET" in text

    def test_run_misses_impossible_deadline(self, bundle):
        code, text = run_cli(
            "run", "--bundle", str(bundle), "--deadline-minutes", "1",
            "--seed", "2",
        )
        assert code == 1
        assert "MISSED" in text

    @pytest.mark.parametrize(
        "policy", ["jockey-online-model", "jockey-no-adapt", "jockey-no-sim",
                   "max-allocation"],
    )
    def test_all_policies_run(self, bundle, policy):
        code, text = run_cli(
            "run", "--bundle", str(bundle), "--deadline-minutes", "60",
            "--policy", policy, "--seed", "2",
        )
        assert code in (0, 1)
        assert "finished in" in text

    def test_run_with_missing_bundle(self, tmp_path):
        code, text = run_cli(
            "run", "--bundle", str(tmp_path / "nope.json"),
            "--deadline-minutes", "10",
        )
        assert code == 2
        assert "cannot load" in text


class TestExperimentCommand:
    def test_runs_fig1_smoke(self):
        code, text = run_cli("experiment", "fig1", "--scale", "smoke")
        assert code == 0
        assert "fig1" in text

    def test_runs_table2_smoke(self):
        code, text = run_cli("experiment", "table2", "--scale", "smoke")
        assert code == 0
        assert "table2" in text
