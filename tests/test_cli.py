"""Unit tests for the command-line interface."""

import io
import json

import pytest

from repro import __version__
from repro.cli import EXPERIMENTS, build_parser, main


def run_cli(*argv):
    out = io.StringIO()
    code = main(list(argv), out=out)
    return code, out.getvalue()


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_train_requires_out(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["train"])

    def test_experiment_validates_id(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["experiment", "fig99"])


class TestExitCodes:
    def test_version_exits_zero(self):
        code, _text = run_cli("--version")
        assert code == 0

    def test_version_string_matches_package(self, capsys):
        # argparse's version action prints to real stdout before SystemExit.
        code, _text = run_cli("--version")
        assert code == 0
        assert __version__ in capsys.readouterr().out

    def test_usage_error_exits_two(self):
        code, _text = run_cli("no-such-command")
        assert code == 2

    def test_missing_required_arg_exits_two(self):
        code, _text = run_cli("run", "--deadline-minutes", "10")
        assert code == 2

    def test_no_command_exits_two(self):
        code, _text = run_cli()
        assert code == 2

    def test_runtime_failure_exits_one(self, tmp_path):
        # A corrupt bundle passes argparse but explodes at runtime deeper
        # than cmd_run's targeted handler; the CLI boundary maps it to 1.
        bad = tmp_path / "bad.json"
        bad.write_text('{"graph": 42}')
        code, text = run_cli(
            "run", "--bundle", str(bad), "--deadline-minutes", "10"
        )
        assert code in (1, 2)
        assert "error" in text


class TestListExperiments:
    def test_lists_all(self):
        code, text = run_cli("list-experiments")
        assert code == 0
        for exp_id in EXPERIMENTS:
            assert exp_id in text


class TestTrainAndRun:
    @pytest.fixture(scope="class")
    def bundle(self, tmp_path_factory):
        path = tmp_path_factory.mktemp("cli") / "bundle.json"
        code, text = run_cli(
            "train", "--job", "mapreduce", "--out", str(path),
            "--cpa-reps", "2", "--seed", "4",
        )
        assert code == 0
        assert "saved bundle" in text
        return path

    def test_unknown_job_rejected(self, tmp_path):
        code, text = run_cli(
            "train", "--job", "Z", "--out", str(tmp_path / "x.json")
        )
        assert code == 2
        assert "unknown job" in text

    def test_run_meets_generous_deadline(self, bundle):
        code, text = run_cli(
            "run", "--bundle", str(bundle), "--deadline-minutes", "60",
            "--seed", "2",
        )
        assert code == 0
        assert "MET" in text

    def test_run_misses_impossible_deadline(self, bundle):
        code, text = run_cli(
            "run", "--bundle", str(bundle), "--deadline-minutes", "1",
            "--seed", "2",
        )
        assert code == 1
        assert "MISSED" in text

    @pytest.mark.parametrize(
        "policy", ["jockey-online-model", "jockey-no-adapt", "jockey-no-sim",
                   "max-allocation"],
    )
    def test_all_policies_run(self, bundle, policy):
        code, text = run_cli(
            "run", "--bundle", str(bundle), "--deadline-minutes", "60",
            "--policy", policy, "--seed", "2",
        )
        assert code in (0, 1)
        assert "finished in" in text

    def test_run_writes_chrome_trace_and_metrics(self, bundle, tmp_path):
        trace_path = tmp_path / "trace.json"
        jsonl_path = tmp_path / "trace.jsonl"
        metrics_path = tmp_path / "metrics.json"
        code, text = run_cli(
            "run", "--bundle", str(bundle), "--deadline-minutes", "60",
            "--seed", "2",
            "--trace-out", str(trace_path),
            "--trace-jsonl", str(jsonl_path),
            "--metrics-out", str(metrics_path),
        )
        assert code == 0
        assert "wrote" in text

        # Chrome trace: loadable JSON with at least one event per task
        # state transition (queued/start/end), spans for completed tasks.
        doc = json.loads(trace_path.read_text())
        names = [e.get("name", "") for e in doc["traceEvents"]]
        assert any(n == "task.queued" for n in names)
        assert any(n == "task.start" for n in names)
        assert any(n == "task.end" for n in names)
        assert any(e.get("ph") == "X" for e in doc["traceEvents"])

        # JSONL: one JSON object per line, same kinds.
        kinds = {
            json.loads(line)["kind"]
            for line in jsonl_path.read_text().splitlines()
        }
        assert {"task.queued", "task.start", "task.end"} <= kinds

        # Metrics snapshot: instruments from multiple layers.
        snap = json.loads(metrics_path.read_text())
        assert snap["repro_runtime_tasks_total"]["values"]['outcome="ok"'] > 0
        assert "repro_simkit_events_dispatched" in snap
        assert "repro_cluster_recomputes_total" in snap

    def test_trace_summarize(self, bundle, tmp_path):
        trace_path = tmp_path / "trace.json"
        code, _text = run_cli(
            "run", "--bundle", str(bundle), "--deadline-minutes", "60",
            "--seed", "2", "--trace-out", str(trace_path),
        )
        assert code == 0
        code, text = run_cli("trace", "summarize", str(trace_path))
        assert code == 0
        assert "task.end" in text

    def test_trace_summarize_missing_file(self, tmp_path):
        code, text = run_cli("trace", "summarize", str(tmp_path / "nope.json"))
        assert code == 1
        assert "cannot read" in text

    def test_run_without_trace_flags_installs_no_recorder(self, bundle):
        from repro.telemetry import trace as telemetry_trace

        code, _text = run_cli(
            "run", "--bundle", str(bundle), "--deadline-minutes", "60",
            "--seed", "2",
        )
        assert code == 0
        assert telemetry_trace.RECORDER is telemetry_trace.NULL

    def test_run_with_missing_bundle(self, tmp_path):
        code, text = run_cli(
            "run", "--bundle", str(tmp_path / "nope.json"),
            "--deadline-minutes", "10",
        )
        assert code == 2
        assert "cannot load" in text


class TestExperimentCommand:
    def test_runs_fig1_smoke(self):
        code, text = run_cli("experiment", "fig1", "--scale", "smoke")
        assert code == 0
        assert "fig1" in text

    def test_runs_table2_smoke(self):
        code, text = run_cli("experiment", "table2", "--scale", "smoke")
        assert code == 0
        assert "table2" in text


class TestObservatory:
    """The report command, --report-out, --serve-metrics, and the
    empty-trace guard."""

    @pytest.fixture(scope="class")
    def bundle(self, tmp_path_factory):
        path = tmp_path_factory.mktemp("cli-obs") / "bundle.json"
        code, _text = run_cli(
            "train", "--job", "mapreduce", "--out", str(path),
            "--cpa-reps", "2", "--seed", "4",
        )
        assert code == 0
        return path

    def test_run_writes_html_report(self, bundle, tmp_path):
        report_path = tmp_path / "run.html"
        code, text = run_cli(
            "run", "--bundle", str(bundle), "--deadline-minutes", "60",
            "--seed", "2", "--report-out", str(report_path),
        )
        assert code == 0
        assert "wrote html report" in text
        html = report_path.read_text(encoding="utf-8")
        assert html.startswith("<!DOCTYPE html>")
        # Self-contained: no scripts, no external fetches.
        assert "<script" not in html.lower()
        assert " src=" not in html
        assert "href=" not in html

    def test_run_serves_metrics_while_running(self, bundle):
        # Port 0 asks the OS for a free port; the CLI prints the bound URL.
        code, text = run_cli(
            "run", "--bundle", str(bundle), "--deadline-minutes", "60",
            "--seed", "2", "--serve-metrics", "0",
        )
        assert code == 0
        assert "serving metrics at http://127.0.0.1:" in text

    def test_metrics_out_is_sorted(self, bundle, tmp_path):
        metrics_path = tmp_path / "metrics.json"
        code, _text = run_cli(
            "run", "--bundle", str(bundle), "--deadline-minutes", "60",
            "--seed", "2", "--metrics-out", str(metrics_path),
        )
        assert code == 0
        names = list(json.loads(metrics_path.read_text()))
        assert names == sorted(names)

    def test_report_command_text_and_html(self, bundle, tmp_path):
        jsonl = tmp_path / "run.jsonl"
        code, _text = run_cli(
            "run", "--bundle", str(bundle), "--deadline-minutes", "60",
            "--seed", "2", "--trace-jsonl", str(jsonl),
        )
        assert code == 0

        code, text = run_cli("report", str(jsonl), "--bundle", str(bundle))
        assert code == 0
        assert "MET" in text or "MISSED" in text

        out = tmp_path / "report.html"
        code, text = run_cli(
            "report", str(jsonl), "--bundle", str(bundle), "--out", str(out)
        )
        assert code == 0
        assert out.read_text(encoding="utf-8").startswith("<!DOCTYPE html>")

    def test_report_missing_file(self, tmp_path):
        code, text = run_cli("report", str(tmp_path / "nope.jsonl"))
        assert code == 1
        assert "cannot read" in text

    def test_empty_trace_rejected_with_guidance(self, tmp_path):
        empty = tmp_path / "empty.jsonl"
        empty.write_text("")
        code, text = run_cli("trace", "summarize", str(empty))
        assert code == 1
        assert "no trace events" in text
        assert "truncated" in text

        code, text = run_cli("report", str(empty))
        assert code == 1
        assert "no trace events" in text


class TestChaos:
    """The --chaos flag: spec loading, error paths, the summary line,
    and the golden help text."""

    @pytest.fixture(scope="class")
    def bundle(self, tmp_path_factory):
        path = tmp_path_factory.mktemp("chaos_cli") / "bundle.json"
        code, _text = run_cli(
            "train", "--job", "mapreduce", "--out", str(path),
            "--cpa-reps", "2", "--seed", "4",
        )
        assert code == 0
        return path

    def _write_spec(self, tmp_path, payload):
        path = tmp_path / "spec.json"
        path.write_text(json.dumps(payload), encoding="utf-8")
        return path

    def test_malformed_json_exits_two_with_usage(self, bundle, tmp_path):
        spec = tmp_path / "bad.json"
        spec.write_text("{not json", encoding="utf-8")
        code, text = run_cli(
            "run", "--bundle", str(bundle), "--deadline-minutes", "60",
            "--chaos", str(spec),
        )
        assert code == 2
        assert "cannot load chaos spec" in text
        assert "usage: repro run --chaos SPEC.json" in text
        assert "EXPERIMENTS.md" in text

    def test_unknown_field_exits_two(self, bundle, tmp_path):
        spec = self._write_spec(tmp_path, {"name": "x", "bogus_field": 1})
        code, text = run_cli(
            "run", "--bundle", str(bundle), "--deadline-minutes", "60",
            "--chaos", str(spec),
        )
        assert code == 2
        assert "cannot load chaos spec" in text

    def test_missing_spec_file_exits_two(self, bundle, tmp_path):
        code, text = run_cli(
            "run", "--bundle", str(bundle), "--deadline-minutes", "60",
            "--chaos", str(tmp_path / "nope.json"),
        )
        assert code == 2
        assert "cannot load chaos spec" in text

    def test_unknown_machine_exits_one_named(self, bundle, tmp_path):
        # Valid JSON, valid schema — but machine 5000 does not exist in a
        # 100-machine cluster. That is a runtime failure, not a usage one.
        spec = self._write_spec(tmp_path, {
            "name": "bad-machine",
            "rack_failures": [{"at": 10.0, "machines": [5000]}],
        })
        code, text = run_cli(
            "run", "--bundle", str(bundle), "--deadline-minutes", "60",
            "--chaos", str(spec),
        )
        assert code == 1
        assert "ChaosError" in text
        assert "5000" in text

    def test_unknown_stage_exits_one_named(self, bundle, tmp_path):
        spec = self._write_spec(tmp_path, {
            "name": "bad-stage",
            "profile_drifts": [{"at": 10.0, "stages": ["no-such-stage"]}],
        })
        code, text = run_cli(
            "run", "--bundle", str(bundle), "--deadline-minutes", "60",
            "--chaos", str(spec),
        )
        assert code == 1
        assert "ChaosError" in text
        assert "no-such-stage" in text

    def test_run_with_chaos_prints_summary_line(self, bundle, tmp_path):
        spec = self._write_spec(tmp_path, {
            "name": "storm",
            "rack_failures": [{"at": 60.0, "count": 3,
                               "repair_seconds": 300.0}],
            "control_faults": {"drop_tick_prob": 0.2,
                               "blackouts": [[100.0, 600.0]]},
        })
        code, text = run_cli(
            "run", "--bundle", str(bundle), "--deadline-minutes", "60",
            "--seed", "2", "--chaos", str(spec),
        )
        assert code in (0, 1)
        assert "chaos 'storm'" in text
        assert "machines failed" in text

    def test_chaos_section_lands_in_report(self, bundle, tmp_path):
        spec = self._write_spec(tmp_path, {
            "name": "storm",
            "rack_failures": [{"at": 60.0, "count": 3}],
        })
        report = tmp_path / "report.html"
        code, _text = run_cli(
            "run", "--bundle", str(bundle), "--deadline-minutes", "60",
            "--seed", "2", "--chaos", str(spec),
            "--report-out", str(report),
        )
        assert code in (0, 1)
        html = report.read_text(encoding="utf-8")
        assert "Chaos injection" in html
        assert "machines failed" in html

    def test_run_help_matches_golden(self, monkeypatch, capsys):
        import pathlib

        monkeypatch.setenv("COLUMNS", "80")
        code, _text = run_cli("run", "--help")
        assert code == 0
        got = capsys.readouterr().out
        golden = pathlib.Path(__file__).parent / "golden" / "run_help.txt"
        assert got == golden.read_text(encoding="utf-8"), (
            "help text drifted; regenerate tests/golden/run_help.txt "
            "(COLUMNS=80) if the change is intentional"
        )


class TestFleet:
    def test_run_writes_digest_and_store(self, tmp_path):
        store = tmp_path / "store"
        digest = tmp_path / "digest.json"
        code, text = run_cli(
            "fleet", "run", "--templates", "A", "--days", "1",
            "--store", str(store), "--digest-out", str(digest),
        )
        assert code == 0
        assert "attainment" in text
        assert f"profile store: {store}" in text
        payload = json.loads(digest.read_text(encoding="utf-8"))
        assert payload["summaries"][0]["template"] == "A"
        assert len(payload["runs"]) == 1
        # Bootstrap + day 0 landed in the store.
        assert len(list((store / "A").glob("gen-*.json"))) == 2

    def test_report_out_has_fleet_section(self, tmp_path):
        report = tmp_path / "fleet.html"
        code, text = run_cli(
            "fleet", "run", "--templates", "A", "--days", "1",
            "--report-out", str(report),
        )
        assert code == 0
        assert "wrote html report" in text
        html = report.read_text(encoding="utf-8")
        assert "fleet: A (ewma)" in html
        assert "SLO attainment" in html

    def test_stats_renders_lineages(self, tmp_path):
        store = tmp_path / "store"
        run_cli(
            "fleet", "run", "--templates", "A", "--days", "1",
            "--store", str(store),
        )
        code, text = run_cli("fleet", "stats", "--store", str(store))
        assert code == 0
        assert "templates: 1" in text
        assert "latest gen-000001" in text

    def test_unknown_job_exits_one_naming_offender(self):
        code, text = run_cli("fleet", "run", "--templates", "ZZZ", "--days", "1")
        assert code == 1
        assert "error" in text
        assert "ZZZ" in text

    def test_malformed_spec_exits_two_with_usage(self, tmp_path):
        spec = tmp_path / "fleet.json"
        spec.write_text('{"bogus": 1}', encoding="utf-8")
        code, text = run_cli("fleet", "run", "--spec", str(spec))
        assert code == 2
        assert "usage:" in text
        assert "bogus" in text

    def test_unreadable_spec_exits_two(self, tmp_path):
        code, text = run_cli(
            "fleet", "run", "--spec", str(tmp_path / "ghost.json")
        )
        assert code == 2
        assert "cannot load fleet spec" in text

    def test_bad_mode_exits_two(self):
        code, _text = run_cli(
            "fleet", "run", "--mode", "clairvoyant", "--days", "1"
        )
        assert code == 2

    def test_empty_templates_exits_two(self):
        code, text = run_cli("fleet", "run", "--templates", ",", "--days", "1")
        assert code == 2
        assert "at least one" in text

    def test_fleet_help_matches_golden(self, monkeypatch, capsys):
        import pathlib

        monkeypatch.setenv("COLUMNS", "80")
        code, _text = run_cli("fleet", "run", "--help")
        assert code == 0
        got = capsys.readouterr().out
        golden = pathlib.Path(__file__).parent / "golden" / "fleet_help.txt"
        assert got == golden.read_text(encoding="utf-8"), (
            "help text drifted; regenerate tests/golden/fleet_help.txt "
            "(COLUMNS=80) if the change is intentional"
        )


class TestPredict:
    @pytest.fixture(scope="class")
    def bundle(self, tmp_path_factory):
        path = tmp_path_factory.mktemp("predict") / "bundle.json"
        code, text = run_cli(
            "train", "--job", "mapreduce", "--out", str(path),
            "--cpa-reps", "2", "--seed", "4",
        )
        assert code == 0
        return path

    def test_timeline_prints_bands_and_hit_column(self, bundle):
        code, text = run_cli(
            "predict", "timeline", "--bundle", str(bundle),
            "--deadline-minutes", "60", "--seed", "2",
        )
        assert code == 0
        assert "hit90" in text
        assert "p80 band [min]" in text
        assert "interval tick(s)" in text

    def test_score_prints_reliability_table_and_verdict(self, bundle):
        code, text = run_cli(
            "predict", "score", "--bundle", str(bundle),
            "--deadline-minutes", "60", "--seed", "2",
        )
        assert code == 0
        assert "empirical" in text
        assert "verdict:" in text
        assert "pinball" in text

    def test_score_json_digest(self, bundle, tmp_path):
        digest = tmp_path / "score.json"
        code, text = run_cli(
            "predict", "score", "--bundle", str(bundle),
            "--deadline-minutes", "60", "--seed", "2",
            "--json-out", str(digest),
        )
        assert code == 0
        assert f"wrote prediction digest to {digest}" in text
        payload = json.loads(digest.read_text(encoding="utf-8"))
        assert payload["kind"] == "predict_score"
        assert payload["schema_version"] == 1
        levels = {lv["level"] for lv in payload["calibration"]["levels"]}
        assert levels == {0.5, 0.8, 0.9, 0.95}
        assert payload["calibration"]["verdict"] in (
            "honest", "overconfident", "conservative"
        )

    def test_digest_identical_across_worker_counts(self, bundle, tmp_path,
                                                   monkeypatch):
        # The prediction digest must not depend on parallelism settings.
        digests = []
        for jobs in ("1", "2"):
            monkeypatch.setenv("REPRO_JOBS", jobs)
            path = tmp_path / f"score-{jobs}.json"
            code, _text = run_cli(
                "predict", "score", "--bundle", str(bundle),
                "--deadline-minutes", "60", "--seed", "2",
                "--json-out", str(path),
            )
            assert code == 0
            digests.append(path.read_bytes())
        assert digests[0] == digests[1]

    def test_policy_without_distribution_exits_one(self, bundle):
        code, text = run_cli(
            "predict", "score", "--bundle", str(bundle),
            "--deadline-minutes", "60", "--policy", "max-allocation",
        )
        assert code == 1
        assert "no prediction intervals recorded" in text

    def test_unreadable_bundle_exits_two(self, tmp_path):
        code, text = run_cli(
            "predict", "timeline", "--bundle", str(tmp_path / "ghost.json"),
            "--deadline-minutes", "60",
        )
        assert code == 2
        assert "cannot load bundle" in text

    def test_missing_subcommand_exits_two(self):
        code, _text = run_cli("predict")
        assert code == 2

    def test_predict_help_matches_golden(self, monkeypatch, capsys):
        import pathlib

        monkeypatch.setenv("COLUMNS", "80")
        code, _text = run_cli("predict", "score", "--help")
        assert code == 0
        got = capsys.readouterr().out
        golden = pathlib.Path(__file__).parent / "golden" / "predict_help.txt"
        assert got == golden.read_text(encoding="utf-8"), (
            "help text drifted; regenerate tests/golden/predict_help.txt "
            "(COLUMNS=80) if the change is intentional"
        )
