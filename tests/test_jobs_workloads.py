"""Unit tests for the workload generators."""

import numpy as np
import pytest

from repro.jobs.workloads import (
    TABLE2_SPECS,
    JobSpec,
    generate_job,
    generate_table2_jobs,
    mapreduce_job,
    random_job,
)


class TestSpecs:
    def test_all_seven_jobs_present(self):
        assert sorted(TABLE2_SPECS) == list("ABCDEFG")

    def test_published_vertex_counts(self):
        assert TABLE2_SPECS["A"].num_vertices == 681
        assert TABLE2_SPECS["G"].num_vertices == 8496

    def test_invalid_spec_rejected(self):
        with pytest.raises(ValueError):
            JobSpec("x", 2, 2, 10, 1.0, 2.0, 1.0, 3.0, 1.0)  # barriers >= stages
        with pytest.raises(ValueError):
            JobSpec("x", 5, 0, 3, 1.0, 2.0, 1.0, 3.0, 1.0)  # vertices < stages


class TestGenerateJob:
    def test_structure_matches_spec_exactly(self):
        for name, spec in TABLE2_SPECS.items():
            graph = generate_job(spec, seed=3).graph
            assert graph.num_stages == spec.num_stages, name
            assert graph.num_barrier_stages == spec.num_barriers, name
            assert graph.num_vertices == spec.num_vertices, name

    def test_deterministic_per_seed(self):
        a = generate_job(TABLE2_SPECS["A"], seed=9)
        b = generate_job(TABLE2_SPECS["A"], seed=9)
        assert [s.num_tasks for s in a.graph.stages] == [
            s.num_tasks for s in b.graph.stages
        ]

    def test_different_seeds_differ(self):
        a = generate_job(TABLE2_SPECS["A"], seed=1)
        b = generate_job(TABLE2_SPECS["A"], seed=2)
        assert [s.num_tasks for s in a.graph.stages] != [
            s.num_tasks for s in b.graph.stages
        ]

    def test_vertex_scale_shrinks_counts(self):
        full = generate_job(TABLE2_SPECS["C"], seed=0)
        small = generate_job(TABLE2_SPECS["C"], seed=0, vertex_scale=0.25)
        assert small.graph.num_stages == full.graph.num_stages
        assert small.graph.num_vertices < full.graph.num_vertices / 2

    def test_invalid_vertex_scale(self):
        with pytest.raises(ValueError):
            generate_job(TABLE2_SPECS["A"], vertex_scale=0.0)
        with pytest.raises(ValueError):
            generate_job(TABLE2_SPECS["A"], vertex_scale=1.5)

    def test_runtime_median_in_ballpark(self):
        """The vertex-weighted runtime median should approximate the
        published value (within 2x — the fit is statistical)."""
        rng = np.random.default_rng(0)
        for name in ("A", "C", "F"):
            spec = TABLE2_SPECS[name]
            generated = generate_job(spec, seed=1)
            samples = []
            for stage in generated.graph.stages:
                sp = generated.profile.stage(stage.name)
                samples += [sp.runtime.sample(rng) for _ in range(stage.num_tasks // 10 + 1)]
            measured = float(np.median(samples))
            assert spec.runtime_median / 2 <= measured <= spec.runtime_median * 2

    def test_profile_covers_all_stages(self):
        generated = generate_job(TABLE2_SPECS["B"], seed=0)
        for stage in generated.graph.stages:
            assert generated.profile.stage(stage.name) is not None

    def test_failure_prob_applied(self):
        generated = generate_job(TABLE2_SPECS["A"], seed=0, failure_prob=0.05)
        assert all(
            generated.profile.stage(s.name).failure_prob == 0.05
            for s in generated.graph.stages
        )


class TestGenerateTable2Jobs:
    def test_generates_all(self):
        jobs = generate_table2_jobs(seed=0)
        assert sorted(jobs) == list("ABCDEFG")


class TestMapReduce:
    def test_shape(self):
        generated = mapreduce_job(num_maps=10, num_reduces=2)
        graph = generated.graph
        assert graph.num_stages == 2
        assert graph.num_barrier_stages == 1
        assert graph.stage("map").num_tasks == 10

    def test_reduce_waits_for_maps(self):
        from repro.jobs.dag import DependencyTracker

        generated = mapreduce_job(num_maps=3, num_reduces=1)
        tracker = DependencyTracker(generated.graph)
        tracker.initially_ready()
        assert tracker.complete("map", 0) == []
        assert tracker.complete("map", 1) == []
        assert tracker.complete("map", 2) == [("reduce", 0)]


class TestRandomJob:
    def test_deterministic(self):
        a = random_job("r", seed=5)
        b = random_job("r", seed=5)
        assert a.graph.num_vertices == b.graph.num_vertices

    def test_honors_explicit_sizes(self):
        generated = random_job("r", seed=1, num_stages=6, num_vertices=120)
        assert generated.graph.num_stages == 6
        assert generated.graph.num_vertices == 120
