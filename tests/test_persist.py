"""Unit tests for the JSON persistence layer."""

import json

import numpy as np
import pytest

from repro import persist
from repro.core.cpa import CpaTable
from repro.core.progress import totalwork
from repro.jobs.dag import EdgeType
from repro.simkit import distributions as dist
from tests.test_core_simulator import deterministic_profile


ALL_DISTRIBUTIONS = [
    dist.Constant(4.0),
    dist.Uniform(1.0, 2.0),
    dist.Exponential(10.0),
    dist.LogNormal(mu=1.2, sigma=0.4),
    dist.WithOutliers(dist.Constant(3.0), 0.1, 4.0),
    dist.Truncated(dist.LogNormal(1.0, 1.0), cap=20.0),
    dist.Empirical([1.0, 2.0, 3.0]),
    dist.Scaled(dist.Constant(2.0), 1.5),
]


class TestDistributionRoundTrip:
    @pytest.mark.parametrize("d", ALL_DISTRIBUTIONS, ids=lambda d: type(d).__name__)
    def test_round_trip_preserves_sampling(self, d):
        data = persist.distribution_to_dict(d)
        json.dumps(data)  # must be JSON-serializable
        restored = persist.distribution_from_dict(data)
        rng1 = np.random.default_rng(0)
        rng2 = np.random.default_rng(0)
        for _ in range(20):
            assert d.sample(rng1) == restored.sample(rng2)

    def test_unknown_kind_rejected(self):
        with pytest.raises(persist.PersistError):
            persist.distribution_from_dict({"kind": "magic"})

    def test_unknown_type_rejected(self):
        with pytest.raises(persist.PersistError):
            persist.distribution_to_dict(object())


class TestGraphRoundTrip:
    def test_round_trip(self):
        graph = deterministic_profile().graph
        restored = persist.graph_from_dict(persist.graph_to_dict(graph))
        assert restored.name == graph.name
        assert [s.num_tasks for s in restored.stages] == [
            s.num_tasks for s in graph.stages
        ]
        assert restored.edges[0].kind is EdgeType.ALL_TO_ALL
        assert restored.topological_order() == graph.topological_order()

    def test_malformed_rejected(self):
        with pytest.raises(persist.PersistError):
            persist.graph_from_dict({"name": "x"})


class TestProfileRoundTrip:
    def test_round_trip(self):
        profile = deterministic_profile(failure_prob=0.05)
        restored = persist.profile_from_dict(persist.profile_to_dict(profile))
        assert restored.stage_names == profile.stage_names
        assert restored.stage("map").failure_prob == 0.05
        assert restored.total_work_seconds() == pytest.approx(
            profile.total_work_seconds()
        )

    def test_malformed_rejected(self):
        with pytest.raises(persist.PersistError):
            persist.profile_from_dict({"graph": persist.graph_to_dict(
                deterministic_profile().graph), "stages": {"map": {}}})


class TestTableRoundTrip:
    def make_table(self):
        profile = deterministic_profile()
        return CpaTable.build(
            profile, totalwork(profile), np.random.default_rng(0),
            allocations=(2, 4, 8), reps=3, num_bins=10, sample_dt=2.0,
        )

    def test_round_trip_queries_match(self):
        table = self.make_table()
        restored = persist.table_from_dict(persist.table_to_dict(table))
        assert restored.allocations == table.allocations
        for p in (0.0, 0.4, 0.9):
            for a in (2, 3, 8):
                assert restored.remaining(p, a, q=0.8) == pytest.approx(
                    table.remaining(p, a, q=0.8), abs=0.02
                )

    def test_precision_rounding(self):
        table = self.make_table()
        data = persist.table_to_dict(table, precision=0)
        restored = persist.table_from_dict(data)
        assert restored.remaining(0.0, 4, q=0.5) == pytest.approx(
            table.remaining(0.0, 4, q=0.5), abs=1.0
        )


class TestBundle:
    def test_round_trip(self, tmp_path):
        profile = deterministic_profile()
        table = CpaTable.build(
            profile, totalwork(profile), np.random.default_rng(0),
            allocations=(2, 4), reps=2, num_bins=10,
        )
        path = tmp_path / "bundle.json"
        persist.save_bundle(
            path, graph=profile.graph, profile=profile, table=table,
            metadata={"trained_at": "2026-07-04"},
        )
        graph, restored_profile, restored_table = persist.load_bundle(path)
        assert graph.name == profile.graph.name
        assert restored_table is not None
        assert restored_table.allocations == [2, 4]

    def test_bundle_without_table(self, tmp_path):
        profile = deterministic_profile()
        path = tmp_path / "bundle.json"
        persist.save_bundle(path, graph=profile.graph, profile=profile)
        _graph, _profile, table = persist.load_bundle(path)
        assert table is None

    def test_wrong_version_rejected(self, tmp_path):
        path = tmp_path / "bundle.json"
        path.write_text(json.dumps({"format_version": 999}))
        with pytest.raises(persist.PersistError, match="version"):
            persist.load_bundle(path)

    def test_garbage_rejected(self, tmp_path):
        path = tmp_path / "bundle.json"
        path.write_text("not json{{{")
        with pytest.raises(persist.PersistError, match="JSON"):
            persist.load_bundle(path)

    def test_loaded_bundle_drives_control_loop(self, tmp_path):
        """End-to-end: a bundle saved by a training process can run the
        control loop in a fresh one."""
        from repro.core.control import ControlConfig
        from repro.core.policies import JockeyPolicy
        from repro.core.progress import totalwork_with_q
        from repro.core.utility import deadline_utility

        profile = deterministic_profile()
        table = CpaTable.build(
            profile, totalwork(profile), np.random.default_rng(0),
            allocations=(2, 4, 8), reps=3, num_bins=10,
        )
        path = tmp_path / "bundle.json"
        persist.save_bundle(path, graph=profile.graph, profile=profile, table=table)

        graph, loaded_profile, loaded_table = persist.load_bundle(path)
        policy = JockeyPolicy(
            loaded_table,
            totalwork_with_q(loaded_profile),
            deadline_utility(60.0),
            ControlConfig(min_tokens=1, max_tokens=8, allocation_step=1),
            profile=loaded_profile,
        )
        assert policy.initial_allocation() >= 2
