"""Unit tests for the C(p, a) tables."""

import numpy as np
import pytest

from repro.core.cpa import CpaError, CpaTable
from repro.core.progress import totalwork
from tests.test_core_simulator import deterministic_profile


@pytest.fixture
def table():
    profile = deterministic_profile()  # 6x10s maps -> barrier -> 2x5s reduces
    return CpaTable.build(
        profile,
        totalwork(profile),
        np.random.default_rng(0),
        allocations=(1, 2, 4, 8),
        reps=3,
        num_bins=20,
        sample_dt=2.0,
    )


class TestBuildAndQuery:
    def test_predicted_duration_matches_deterministic_job(self, table):
        # At a=4: waves 4+2 of maps (20s) + 5s reduce = 25s.  The p=0 bin
        # also holds "started but nothing finished yet" samples (the
        # paper's sampling does the same), so the median sits below 25 and
        # the high percentile at 25.
        assert table.predicted_duration(4, q=0.99) == pytest.approx(25.0, abs=1.0)
        assert 15.0 <= table.predicted_duration(4, q=0.5) <= 25.0
        assert table.predicted_duration(1, q=0.99) == pytest.approx(70.0, abs=1.0)

    def test_remaining_decreases_with_progress(self, table):
        values = [table.remaining(p, 4, q=0.5) for p in (0.0, 0.3, 0.6, 0.9)]
        assert values == sorted(values, reverse=True)

    def test_remaining_decreases_with_allocation(self, table):
        at_zero = [table.remaining(0.0, a, q=0.5) for a in (1, 2, 4, 8)]
        assert at_zero == sorted(at_zero, reverse=True)

    def test_interpolation_between_grid_points(self, table):
        lo = table.remaining(0.0, 2, q=0.5)
        hi = table.remaining(0.0, 4, q=0.5)
        mid = table.remaining(0.0, 3, q=0.5)
        assert min(lo, hi) <= mid <= max(lo, hi)

    def test_clamps_outside_grid(self, table):
        assert table.remaining(0.0, 0.5, q=0.5) == table.remaining(0.0, 1, q=0.5)
        assert table.remaining(0.0, 500, q=0.5) == table.remaining(0.0, 8, q=0.5)

    def test_progress_one_near_zero_remaining(self, table):
        assert table.remaining(1.0, 4, q=0.9) < 10.0

    def test_percentiles_ordered(self, table):
        lo = table.remaining(0.0, 4, q=0.1)
        hi = table.remaining(0.0, 4, q=0.9)
        assert lo <= hi

    def test_min_allocation_for_budget(self, table):
        # 70s budget: even 1 token suffices (~70s).
        assert table.min_allocation_for(75.0, q=0.5) == 1
        # 30s budget: needs 4 tokens (25s) -- 2 tokens take ~35s.
        assert table.min_allocation_for(30.0, q=0.5) == 4

    def test_min_allocation_infeasible(self, table):
        assert table.min_allocation_for(1.0, q=0.5) is None

    def test_sample_counts_nonzero(self, table):
        counts = table.sample_counts()
        assert set(counts) == {1, 2, 4, 8}
        assert all(c > 0 for c in counts.values())


class TestValidation:
    def test_bad_progress(self, table):
        with pytest.raises(CpaError):
            table.remaining(1.5, 4)
        with pytest.raises(CpaError):
            table.remaining(-0.1, 4)

    def test_bad_allocation(self, table):
        with pytest.raises(CpaError):
            table.remaining(0.5, 0)

    def test_bad_percentile(self, table):
        with pytest.raises(CpaError):
            table.remaining(0.5, 4, q=1.5)

    def test_bad_build_args(self):
        profile = deterministic_profile()
        rng = np.random.default_rng(0)
        with pytest.raises(CpaError):
            CpaTable.build(profile, totalwork(profile), rng, reps=0)
        with pytest.raises(CpaError):
            CpaTable.build(profile, totalwork(profile), rng, num_bins=1)


class TestVectorizedQueries:
    def test_remaining_curve_matches_scalar_exactly(self, table):
        # Exact-grid points, clamped ends, and interpolated midpoints: the
        # batched scan must reproduce the scalar query bit-for-bit, or the
        # control loop's argmin could flip between code paths.
        allocations = [0.5, 1, 2, 3, 4, 5.5, 8, 100]
        for q in (0.1, 0.5, 0.6, 0.9):
            for progress in (0.0, 0.3, 0.77, 1.0):
                curve = table.remaining_curve(progress, allocations, q=q)
                scalars = [
                    table.remaining(progress, a, q=q) for a in allocations
                ]
                assert curve.tolist() == scalars

    def test_remaining_curve_validates_like_scalar(self, table):
        with pytest.raises(CpaError):
            table.remaining_curve(1.5, [1, 2])
        with pytest.raises(CpaError):
            table.remaining_curve(0.5, [1, 2], q=-0.1)
        with pytest.raises(CpaError):
            table.remaining_curve(0.5, [0, 2])

    def test_exact_grid_allocation_uses_column_directly(self, table):
        # Integral on-grid allocations (incl. float-typed ones) must answer
        # from the column itself, not via interpolation round-trips.
        for a in table.allocations:
            assert table.remaining(0.3, float(a)) == table.remaining(0.3, a)
            assert table.exceedance(0.3, float(a), 10.0) == (
                table.exceedance(0.3, a, 10.0)
            )

    def test_percentile_matches_numpy_quantile(self, table):
        # The O(1) presorted lookup must agree with np.quantile's 'linear'
        # interpolation, which the original implementation called per query.
        column = table._columns[4]
        for bin_index in (0, 5, 10):
            samples = column.bins[bin_index]
            if samples.size == 0:
                continue
            for q in (0.0, 0.25, 0.5, 0.9, 1.0):
                assert column.percentile(bin_index, q) == pytest.approx(
                    float(np.quantile(samples, q)), abs=1e-9
                )
