"""Integration tests: the full training -> modeling -> control pipeline at
smoke scale.  These are the slowest tests in the suite (a few seconds)."""

import pytest

from repro.core.admission import AdmissionController, SloRequest
from repro.experiments.runner import (
    POLICY_KINDS,
    RunConfig,
    make_policy,
    run_experiment,
    run_suite,
    sample_runtime_scale,
)
from repro.experiments.scenarios import (
    SMOKE,
    clear_trained_cache,
    pick_deadline,
    trained_job,
)
from repro.simkit.random import RngRegistry


@pytest.fixture(scope="module")
def trained():
    return trained_job("A", seed=0, scale=SMOKE)


class TestTrainingPipeline:
    def test_training_trace_complete(self, trained):
        assert trained.training_trace.finished
        assert (
            len(trained.training_trace.successful_records())
            == trained.graph.num_vertices
        )

    def test_learned_profile_covers_stages(self, trained):
        for stage in trained.graph.stages:
            assert trained.learned_profile.stage(stage.name) is not None

    def test_table_spans_scale_allocations(self, trained):
        assert trained.table.allocations == sorted(SMOKE.allocations)

    def test_deadline_feasible(self, trained):
        fastest = trained.table.predicted_duration(
            max(trained.table.allocations), q=0.9
        )
        assert trained.short_deadline >= 1.5 * fastest
        assert trained.long_deadline == 2 * trained.short_deadline

    def test_cache_returns_same_object(self):
        a = trained_job("A", seed=0, scale=SMOKE)
        b = trained_job("A", seed=0, scale=SMOKE)
        assert a is b

    def test_indicator_tables_cached(self, trained):
        t1 = trained.table_for_indicator("cp")
        t2 = trained.table_for_indicator("cp")
        assert t1 is t2

    def test_all_indicators_constructible(self, trained):
        for kind in ("totalworkWithQ", "totalwork", "vertexfrac", "cp",
                     "minstage", "minstage-inf"):
            indicator = trained.indicator_named(kind)
            fractions = {s: 0.0 for s in trained.learned_profile.stage_names}
            assert indicator.progress(fractions) == pytest.approx(0.0, abs=0.05)


class TestRunExperiment:
    @pytest.mark.parametrize("kind", POLICY_KINDS)
    def test_each_policy_completes(self, trained, kind):
        policy = make_policy(kind, trained, trained.long_deadline)
        result = run_experiment(
            trained, policy,
            RunConfig(deadline_seconds=trained.long_deadline, seed=3),
        )
        assert result.metrics.duration_seconds > 0
        assert result.allocation_series
        assert result.metrics.policy == kind

    def test_same_seed_reproduces_exactly(self, trained):
        outcomes = []
        for _ in range(2):
            policy = make_policy("jockey", trained, trained.long_deadline)
            result = run_experiment(
                trained, policy,
                RunConfig(deadline_seconds=trained.long_deadline, seed=11),
            )
            outcomes.append(result.metrics.duration_seconds)
        assert outcomes[0] == outcomes[1]

    def test_different_seeds_differ(self, trained):
        durations = set()
        for seed in (1, 2, 3):
            policy = make_policy("jockey", trained, trained.long_deadline)
            result = run_experiment(
                trained, policy,
                RunConfig(deadline_seconds=trained.long_deadline, seed=seed),
            )
            durations.add(result.metrics.duration_seconds)
        assert len(durations) == 3

    def test_deadline_change_applies(self, trained):
        policy = make_policy("jockey", trained, trained.long_deadline)
        result = run_experiment(
            trained, policy,
            RunConfig(
                deadline_seconds=trained.long_deadline,
                seed=5,
                deadline_changes=((60.0, trained.long_deadline * 3),),
            ),
        )
        assert result.final_deadline == trained.long_deadline * 3
        assert result.trace.deadline == trained.long_deadline * 3

    def test_runtime_scale_override(self, trained):
        results = {}
        for scale_factor in (0.8, 1.6):
            policy = make_policy("max-allocation", trained, trained.long_deadline)
            results[scale_factor] = run_experiment(
                trained, policy,
                RunConfig(
                    deadline_seconds=trained.long_deadline, seed=9,
                    runtime_scale=scale_factor, sample_cluster_day=False,
                ),
            ).metrics.duration_seconds
        assert results[1.6] > results[0.8]

    def test_unknown_policy_kind(self, trained):
        with pytest.raises(ValueError):
            make_policy("nonsense", trained, 100.0)


class TestRunSuite:
    def test_cross_product_size(self, trained):
        results = run_suite(
            [trained], ("jockey", "max-allocation"), reps=2,
            deadline_of=lambda t: (t.short_deadline,),
        )
        assert len(results) == 4

    def test_metrics_carry_policy_names(self, trained):
        results = run_suite(
            [trained], ("max-allocation",), reps=1,
        )
        assert results[0].metrics.policy == "max-allocation"


class TestRuntimeScaleSampler:
    def test_within_clip(self):
        rng = RngRegistry(0).stream("x")
        samples = [sample_runtime_scale(rng) for _ in range(500)]
        assert all(0.7 <= s <= 1.7 for s in samples)
        assert min(samples) < 1.0 < max(samples)


class TestAdmissionIntegration:
    def test_admission_with_real_table(self, trained):
        controller = AdmissionController(100, slack=1.2, q=0.9)
        decision = controller.admit(
            SloRequest("job1", trained.table, trained.short_deadline)
        )
        assert decision.admitted
        # Fill the slice with copies until rejection.
        admitted = 1
        while admitted < 50:
            decision = controller.admit(
                SloRequest(f"job{admitted + 1}", trained.table,
                           trained.short_deadline)
            )
            if not decision.admitted:
                break
            admitted += 1
        assert admitted < 50, "slice should saturate eventually"
