"""Tests for the cross-run profile store.

The contract mirrors the C(p, a) cache: appends are atomic and strictly
ordered, a load returns exactly what was stored (fingerprint-verified),
and a corrupt generation degrades to a warning + drop — the lineage
self-heals from the next run, never crashes.
"""

import json

import pytest

from repro.cache import profile_fingerprint
from repro.fleet.store import (
    STORE_DIR_ENV,
    FleetError,
    ProfileStore,
    default_root,
)
from repro.jobs.dag import Edge, EdgeType, JobGraph, Stage
from repro.jobs.profiles import JobProfile, StageProfile
from repro.simkit.distributions import Constant, Empirical


def small_graph():
    return JobGraph(
        "g",
        [Stage("map", 4), Stage("reduce", 2)],
        [Edge("map", "reduce", EdgeType.ALL_TO_ALL)],
    )


def profile_with_map_runtimes(graph, values):
    return JobProfile(
        graph,
        {
            "map": StageProfile(
                "map",
                runtime=Empirical(values),
                queue_obs=Constant(2.0),
            ),
            "reduce": StageProfile(
                "reduce",
                runtime=Empirical([30.0, 32.0, 28.0, 31.0]),
                queue_obs=Constant(4.0),
            ),
        },
    )


@pytest.fixture
def store(tmp_path):
    return ProfileStore(tmp_path)


@pytest.fixture
def graph():
    return small_graph()


class TestAppendAndLoad:
    def test_generations_are_sequential(self, store, graph):
        for i in range(3):
            gen = store.append(
                "A", profile_with_map_runtimes(graph, [10.0 + i] * 8)
            )
            assert gen.number == i
        assert [g.number for g in store.generations("A")] == [0, 1, 2]
        assert store.latest("A").number == 2

    def test_round_trip_preserves_content(self, store, graph):
        profile = profile_with_map_runtimes(graph, [10.0, 12.0, 11.0, 13.0])
        gen = store.append("A", profile, metadata={"day": 3})
        loaded = store.load_profile("A", graph=graph)
        assert loaded.stage("map").runtime.mean() == pytest.approx(
            profile.stage("map").runtime.mean()
        )
        assert profile_fingerprint(loaded) == gen.fingerprint
        assert gen.metadata == {"day": 3}

    def test_load_specific_generation(self, store, graph):
        store.append("A", profile_with_map_runtimes(graph, [10.0] * 8))
        store.append("A", profile_with_map_runtimes(graph, [20.0] * 8))
        old = store.load_profile("A", 0, graph=graph)
        assert old.stage("map").runtime.mean() == pytest.approx(10.0)
        with pytest.raises(FleetError, match="no generation 9"):
            store.load_profile("A", 9)

    def test_missing_template_raises(self, store):
        with pytest.raises(FleetError, match="no generations"):
            store.load_profile("ghost")

    def test_lineage_limit_keeps_newest(self, store, graph):
        for i in range(4):
            store.append(
                "A", profile_with_map_runtimes(graph, [float(10 + i)] * 8)
            )
        lineage = store.lineage("A", limit=2, graph=graph)
        assert [p.stage("map").runtime.mean() for p in lineage] == [12.0, 13.0]

    def test_invalid_template_name_rejected(self, store, graph):
        with pytest.raises(FleetError, match="invalid template name"):
            store.append("../evil", profile_with_map_runtimes(graph, [1.0]))


class TestCorruption:
    def _one_entry(self, store, graph):
        return store.append(
            "A", profile_with_map_runtimes(graph, [10.0, 11.0, 12.0, 13.0])
        )

    def test_truncated_entry_warns_and_drops(self, store, graph):
        gen = self._one_entry(store, graph)
        gen.path.write_text("{not json", encoding="utf-8")
        with pytest.warns(RuntimeWarning, match="corrupt fleet-store"):
            assert store.generations("A") == []
        assert not gen.path.exists()

    def test_fingerprint_mismatch_warns_and_drops(self, store, graph):
        gen = self._one_entry(store, graph)
        payload = json.loads(gen.path.read_text(encoding="utf-8"))
        payload["fingerprint"] = "0" * 64
        gen.path.write_text(json.dumps(payload), encoding="utf-8")
        with pytest.warns(RuntimeWarning, match="fingerprint mismatch"):
            assert store.generations("A") == []
        assert not gen.path.exists()

    def test_schema_mismatch_warns_and_drops(self, store, graph):
        gen = self._one_entry(store, graph)
        payload = json.loads(gen.path.read_text(encoding="utf-8"))
        payload["schema"] = 999
        gen.path.write_text(json.dumps(payload), encoding="utf-8")
        with pytest.warns(RuntimeWarning, match="schema"):
            assert store.latest("A") is None

    def test_lineage_self_heals_after_drop(self, store, graph):
        gen = self._one_entry(store, graph)
        store.append("A", profile_with_map_runtimes(graph, [20.0] * 8))
        gen.path.write_text("junk", encoding="utf-8")
        with pytest.warns(RuntimeWarning):
            survivors = store.generations("A")
        assert [g.number for g in survivors] == [1]
        # The next append continues the numbering past the survivor.
        nxt = store.append("A", profile_with_map_runtimes(graph, [21.0] * 8))
        assert nxt.number == 2


class TestStatsAndClear:
    def test_stats_counts_templates_and_bytes(self, store, graph):
        store.append("A", profile_with_map_runtimes(graph, [10.0] * 8))
        store.append("A", profile_with_map_runtimes(graph, [11.0] * 8))
        store.append("B", profile_with_map_runtimes(graph, [12.0] * 8))
        stats = store.stats()
        assert stats["templates"] == 2
        assert stats["generations"] == 3
        assert stats["bytes"] > 0
        assert stats["per_template"]["A"]["generations"] == 2

    def test_clear_one_template(self, store, graph):
        store.append("A", profile_with_map_runtimes(graph, [10.0] * 8))
        store.append("B", profile_with_map_runtimes(graph, [11.0] * 8))
        assert store.clear("A") == 1
        assert store.templates() == ["B"]

    def test_clear_all(self, store, graph):
        store.append("A", profile_with_map_runtimes(graph, [10.0] * 8))
        store.append("B", profile_with_map_runtimes(graph, [11.0] * 8))
        assert store.clear() == 2
        assert store.templates() == []


class TestDefaultRoot:
    def test_env_override(self, tmp_path, monkeypatch):
        monkeypatch.setenv(STORE_DIR_ENV, str(tmp_path / "fleet"))
        assert default_root() == tmp_path / "fleet"

    def test_fallback_under_home(self, monkeypatch):
        monkeypatch.delenv(STORE_DIR_ENV, raising=False)
        assert default_root().name == "fleet"
