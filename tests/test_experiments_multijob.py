"""Tests for multi-SLO-job co-execution (the paper's future-work arbiter)."""

import pytest

from repro.experiments.multijob import MultiJobResult, run_multi_job
from repro.experiments.scenarios import SMOKE, trained_jobs


@pytest.fixture(scope="module")
def jobs():
    return list(trained_jobs(seed=0, scale=SMOKE).values())


class TestRunMultiJob:
    def test_all_jobs_finish_independent(self, jobs):
        result = run_multi_job(jobs, mode="independent", seed=1)
        assert set(result.per_job) == {t.name for t in jobs}
        assert all(m.duration_seconds > 0 for m in result.per_job.values())

    def test_all_jobs_finish_arbiter(self, jobs):
        result = run_multi_job(jobs, mode="arbiter", seed=1)
        assert set(result.per_job) == {t.name for t in jobs}

    def test_allocation_series_recorded(self, jobs):
        result = run_multi_job(jobs, mode="arbiter", seed=2)
        assert result.allocation_series
        minute, allocations = result.allocation_series[0]
        assert minute >= 1.0
        assert set(allocations) <= {t.name for t in jobs}

    def test_slice_never_exceeded_by_arbiter(self, jobs):
        result = run_multi_job(jobs, mode="arbiter", seed=3, slice_tokens=60)
        for _minute, allocations in result.allocation_series:
            assert sum(allocations.values()) <= 60

    def test_heavy_job_receives_more_under_arbiter(self, jobs):
        """A job with a 1.5x input should end up with a larger share than
        its equally-deadlined peer at some point in the run."""
        heavy = jobs[0].name
        result = run_multi_job(
            jobs, mode="arbiter", seed=4,
            runtime_scales={heavy: 1.5},
        )
        got_more = any(
            allocations.get(heavy, 0) > max(
                (v for k, v in allocations.items() if k != heavy), default=0
            )
            for _m, allocations in result.allocation_series
        )
        assert got_more

    def test_deterministic(self, jobs):
        a = run_multi_job(jobs, mode="arbiter", seed=5)
        b = run_multi_job(jobs, mode="arbiter", seed=5)
        assert {
            n: m.duration_seconds for n, m in a.per_job.items()
        } == {n: m.duration_seconds for n, m in b.per_job.items()}

    def test_validation(self, jobs):
        with pytest.raises(ValueError):
            run_multi_job(jobs, mode="chaos")
        with pytest.raises(ValueError):
            run_multi_job([])
        with pytest.raises(ValueError):
            run_multi_job([jobs[0], jobs[0]])

    def test_result_aggregates(self, jobs):
        result = run_multi_job(jobs, mode="independent", seed=6)
        assert result.jobs_missed >= 0
        assert result.worst_relative_latency > 0


class TestExperimentDriver:
    def test_report_shape(self):
        from repro.experiments import exp_multijob

        report = exp_multijob.run(SMOKE, seed=0)
        assert len(report.rows) == 2
        modes = [row[0] for row in report.rows]
        assert modes == ["independent", "arbiter"]
