"""Telemetry overhead benchmark: recorder-on vs recorder-off.

The acceptance bar for the instrumentation is that tracing changes the
end-to-end ``repro run`` wall time by less than 5%.  We reproduce the
quickstart pipeline — train a MapReduce-shaped job, build its C(p, a)
table, then control live runs against a deadline — and time the controlled
run (what ``repro run`` executes) with and without a recorder installed.
Machine noise between individual runs (CPU frequency drift, scheduler)
spans several percent, so runs are interleaved in off/on pairs and the
asserted statistic is the *median of pairwise deltas* — robust to the
correlated drift that min-of-N cannot remove.
"""

import gc
import statistics
import time

from repro.cluster import Cluster, ClusterConfig
from repro.core.control import ControlConfig
from repro.core.cpa import CpaTable
from repro.core.policies import JockeyPolicy
from repro.core.progress import totalwork_with_q
from repro.core.utility import deadline_utility
from repro.jobs.profiles import JobProfile
from repro.jobs.workloads import mapreduce_job
from repro.runtime.jobmanager import JobManager, run_to_completion
from repro.simkit.events import Simulator
from repro.simkit.random import RngRegistry
from repro.telemetry import trace as telemetry_trace

PAIRS = 21
MAX_OVERHEAD = 0.05
DEADLINE = 3600.0


def _train():
    """The quickstart's training half: profiling run + C(p, a) table."""
    generated = mapreduce_job(num_maps=400, num_reduces=40)
    sim = Simulator()
    cluster = Cluster(sim, ClusterConfig(), rng=RngRegistry(4))
    manager = JobManager(
        cluster, generated.graph, generated.profile,
        initial_allocation=50, rng=RngRegistry(4).stream("train"),
    )
    trace = run_to_completion(manager)
    learned = JobProfile.from_trace(generated.graph, trace,
                                    min_failure_prob=0.001)
    indicator = totalwork_with_q(learned)
    table = CpaTable.build(
        learned, indicator, RngRegistry(4).stream("cpa"), reps=2
    )
    return generated.graph, learned, indicator, table


GRAPH, LEARNED, INDICATOR, TABLE = _train()


def _controlled_run(seed: int = 2) -> None:
    """What ``repro run --policy jockey`` executes after loading a bundle."""
    policy = JockeyPolicy(
        TABLE, INDICATOR, deadline_utility(DEADLINE), ControlConfig(),
        profile=LEARNED,
    )
    sim = Simulator()
    cluster = Cluster(sim, ClusterConfig(), rng=RngRegistry(seed))
    manager = JobManager(
        cluster, GRAPH, LEARNED,
        initial_allocation=policy.initial_allocation(),
        rng=RngRegistry(seed).stream("cli-run"),
        deadline=DEADLINE,
    )

    def tick() -> None:
        if manager.finished:
            return
        allocation = policy.on_tick(manager.snapshot())
        if allocation is not None:
            manager.set_allocation(allocation)

    sim.schedule_every(60.0, tick)
    run_to_completion(manager)


def test_tracing_overhead_under_five_percent():
    _controlled_run()  # warm imports, allocator, and code paths
    _controlled_run()
    gc.disable()
    try:
        deltas = []
        for _ in range(PAIRS):
            start = time.perf_counter()
            _controlled_run()
            off = time.perf_counter() - start
            with telemetry_trace.capture(capacity=1 << 20):
                start = time.perf_counter()
                _controlled_run()
                on = time.perf_counter() - start
            deltas.append((on - off) / off)
    finally:
        gc.enable()
    overhead = statistics.median(deltas)
    print(f"\ntelemetry overhead: median of {PAIRS} pairwise deltas = "
          f"{overhead * 100:+.2f}% "
          f"(spread {min(deltas) * 100:+.1f}% .. {max(deltas) * 100:+.1f}%)")
    assert overhead < MAX_OVERHEAD, (
        f"traced run {overhead * 100:.1f}% slower than untraced "
        f"(budget {MAX_OVERHEAD * 100:.0f}%)"
    )


def test_disabled_recorder_leaves_no_events():
    assert telemetry_trace.RECORDER is telemetry_trace.NULL
    _controlled_run()
    assert telemetry_trace.RECORDER.events() == []
