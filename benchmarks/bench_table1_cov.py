"""Table 1: CoV of completion times across runs of recurring jobs."""

from repro.experiments import exp_table1


def test_table1_cov(benchmark, scale, save_report):
    (report,) = benchmark.pedantic(
        lambda: save_report(exp_table1.run(scale)), rounds=1, iterations=1
    )
    assert report.rows, "table 1 produced no rows"
