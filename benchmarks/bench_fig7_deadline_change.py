"""Fig. 7: adapting to mid-run deadline changes."""

from repro.experiments import exp_fig7


def test_fig7_deadline_change(benchmark, scale, save_report):
    (report,) = benchmark.pedantic(
        lambda: save_report(exp_fig7.run(scale)), rounds=1, iterations=1
    )
    assert len(report.rows) == 3
