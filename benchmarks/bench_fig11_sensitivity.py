"""Fig. 11: control-loop sensitivity analysis."""

from repro.experiments import exp_fig11


def test_fig11_sensitivity(benchmark, scale, save_report):
    (report,) = benchmark.pedantic(
        lambda: save_report(exp_fig11.run(scale)), rounds=1, iterations=1
    )
    assert len(report.rows) == 7
