"""C(p, a) build benchmark: serial vs process-pool fan-out.

Model building is ``|allocations| x reps`` independent simulations, so it
should scale with cores.  This benchmark times the same build at one and
four workers, checks the tables come out bit-identical (worker-count
invariance is the contract that makes the fan-out safe), and saves a JSON
digest under ``results/`` with the host's core count for context.

The speedup assertion only fires on hosts with >= 4 cores: on smaller
machines (CI sandboxes, laptops on power-save) the digest still records
the honest numbers, and the identity check still guards correctness.
"""

import os
import pathlib
import time

import numpy as np

from repro.core.cpa import CpaTable
from repro.perf.digest import write_digest
from repro.core.progress import totalwork
from repro.jobs.dag import Edge, EdgeType, JobGraph, Stage
from repro.jobs.profiles import JobProfile, StageProfile
from repro.simkit.distributions import LogNormal, Uniform, WithOutliers

RESULTS_DIR = pathlib.Path(__file__).resolve().parent.parent / "results"

#: Required parallel speedup at 4 workers, on hosts that have the cores.
MIN_PARALLEL_SPEEDUP = 2.5

BUILD_KWARGS = dict(
    allocations=(5, 10, 20, 40),
    reps=16,
    num_bins=50,
    sample_dt=5.0,
    seed=99,
)


def bench_profile() -> JobProfile:
    """A mid-size stochastic job: enough tasks that each simulation unit
    does real work, small enough that the serial build stays seconds."""
    graph = JobGraph(
        "bench",
        [Stage("extract", 2500), Stage("join", 800), Stage("aggregate", 80)],
        [
            Edge("extract", "join", EdgeType.ALL_TO_ALL),
            Edge("join", "aggregate", EdgeType.ALL_TO_ALL),
        ],
    )
    return JobProfile(
        graph,
        {
            "extract": StageProfile(
                "extract",
                runtime=WithOutliers(LogNormal(3.0, 0.35), 0.05, 4.0),
                init=Uniform(0.5, 2.0),
                failure_prob=0.02,
            ),
            "join": StageProfile(
                "join", runtime=LogNormal(3.4, 0.3), failure_prob=0.01
            ),
            "aggregate": StageProfile(
                "aggregate", runtime=Uniform(20.0, 45.0)
            ),
        },
    )


def _build(jobs: int) -> tuple:
    profile = bench_profile()
    start = time.perf_counter()
    table = CpaTable.build(profile, totalwork(profile), jobs=jobs, **BUILD_KWARGS)
    return time.perf_counter() - start, table


def _tables_identical(a: CpaTable, b: CpaTable) -> bool:
    if a.allocations != b.allocations:
        return False
    for alloc in a.allocations:
        for ba, bb in zip(a._columns[alloc].bins, b._columns[alloc].bins):
            if not np.array_equal(ba, bb):
                return False
    return True


def test_parallel_build_speedup_and_identity():
    serial_s, serial_table = _build(jobs=1)
    parallel_s, parallel_table = _build(jobs=4)
    speedup = serial_s / parallel_s if parallel_s > 0 else float("inf")
    cores = os.cpu_count() or 1

    assert _tables_identical(serial_table, parallel_table), (
        "parallel build diverged from serial — worker-count invariance broken"
    )

    RESULTS_DIR.mkdir(exist_ok=True)
    digest = {
        "benchmark": "cpa_build",
        "units": len(BUILD_KWARGS["allocations"]) * BUILD_KWARGS["reps"],
        "serial_seconds": round(serial_s, 4),
        "parallel4_seconds": round(parallel_s, 4),
        "speedup_at_4_workers": round(speedup, 3),
        "tables_identical": True,
        "speedup_asserted": cores >= 4,
        "min_required_speedup": MIN_PARALLEL_SPEEDUP,
    }
    write_digest(RESULTS_DIR / "bench_cpa_build.json", digest)
    print(f"\nC(p, a) build: serial {serial_s:.2f}s, 4 workers "
          f"{parallel_s:.2f}s ({speedup:.2f}x on {cores} cores)")

    if cores >= 4:
        assert speedup >= MIN_PARALLEL_SPEEDUP, (
            f"expected >= {MIN_PARALLEL_SPEEDUP}x at 4 workers on a "
            f"{cores}-core host, measured {speedup:.2f}x"
        )
