"""Fig. 4 + Fig. 5: the headline policy comparison."""

from repro.experiments import exp_fig4_5


def test_fig4_fig5_policies(benchmark, scale, save_report):
    fig4, fig5 = benchmark.pedantic(
        lambda: save_report(*exp_fig4_5.run(scale)), rounds=1, iterations=1
    )
    assert len(fig4.rows) == 4
    assert len(fig5.rows) == 4
