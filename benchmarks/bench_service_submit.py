"""Live-service submission latency and sustained admission throughput.

Every submission is one HTTP round trip through the market front door:
parse, model lookup, market sizing, admission verdict, first prediction.
This bench drives an in-process arbiter (no workers — jobs queue or run
idle; only the submit path is measured) with a tiny injected template so
no training happens inside the measurement window.

The digest (``results/bench_service_submit.json``) is schema-stamped via
the shared ``write_digest`` so the perf observatory can track both the
round-trip quantiles and the sustained submissions/sec.
"""

import pathlib
import time

from repro.jobs.dag import Edge, EdgeType, JobGraph, Stage
from repro.jobs.profiles import JobProfile, StageProfile
from repro.perf.digest import write_digest
from repro.service.client import ServiceClient
from repro.service.models import TemplateModelStore
from repro.service.server import ClusterService, ServiceConfig
from repro.simkit.distributions import Constant

RESULTS_DIR = pathlib.Path(__file__).resolve().parent.parent / "results"
DIGEST_PATH = RESULTS_DIR / "bench_service_submit.json"

SUBMISSIONS = 100
#: Loose CI bars: a submit round trip on loopback should be a few
#: milliseconds; these only catch order-of-magnitude regressions.
P95_BUDGET_SECONDS = 0.25
RATE_FLOOR_PER_SEC = 20.0


def build_service() -> ClusterService:
    graph = JobGraph(
        "bench",
        [Stage("map", 6), Stage("reduce", 2)],
        [Edge("map", "reduce", EdgeType.ALL_TO_ALL)],
    )
    profile = JobProfile(
        graph,
        {
            "map": StageProfile("map", runtime=Constant(30.0)),
            "reduce": StageProfile("reduce", runtime=Constant(20.0)),
        },
    )
    store = TemplateModelStore(seed=0)
    store.add("bench", graph, profile, None)
    config = ServiceConfig(capacity_tokens=10_000, time_scale=0.01)
    return ClusterService(config, store=store)


def quantile(samples, q):
    ordered = sorted(samples)
    index = min(len(ordered) - 1, int(q * len(ordered)))
    return ordered[index]


def test_submit_round_trip_and_sustained_rate():
    service = build_service()
    service.start()
    try:
        client = ServiceClient(service.url)
        # One warm-up submission outside the window (template sizing,
        # first-response plumbing).
        client.submit(
            template="bench", deadline_minutes=600.0, policy="jockey-no-sim"
        )

        latencies = []
        outcomes = {"running": 0, "queued": 0, "rejected": 0}
        window_start = time.perf_counter()
        for _ in range(SUBMISSIONS):
            start = time.perf_counter()
            reply = client.submit(
                template="bench",
                deadline_minutes=600.0,
                policy="jockey-no-sim",
            )
            latencies.append(time.perf_counter() - start)
            outcomes[reply["status"]] += 1
        window = time.perf_counter() - window_start
    finally:
        service.stop(drain=False)

    rate = SUBMISSIONS / window
    payload = {
        "benchmark": "service_submit",
        "submissions": SUBMISSIONS,
        "admitted": outcomes["running"] + outcomes["queued"],
        "rejected": outcomes["rejected"],
        "p50_seconds": round(quantile(latencies, 0.50), 6),
        "p95_seconds": round(quantile(latencies, 0.95), 6),
        "max_seconds": round(max(latencies), 6),
        "window_seconds": round(window, 6),
        "submissions_per_sec": round(rate, 2),
        "p95_budget_seconds": P95_BUDGET_SECONDS,
        "rate_floor_per_sec": RATE_FLOOR_PER_SEC,
    }
    RESULTS_DIR.mkdir(exist_ok=True)
    stamped = write_digest(DIGEST_PATH, payload)
    assert stamped["schema_version"] >= 1

    print(
        f"\nservice submit x{SUBMISSIONS}: p50 "
        f"{payload['p50_seconds'] * 1000:.1f}ms, p95 "
        f"{payload['p95_seconds'] * 1000:.1f}ms, sustained "
        f"{payload['submissions_per_sec']:.0f}/s"
    )

    # Every submission must get a verdict (the front door never drops).
    assert sum(outcomes.values()) == SUBMISSIONS
    assert payload["p95_seconds"] < P95_BUDGET_SECONDS
    assert rate > RATE_FLOOR_PER_SEC
