"""Perf-collector overhead benchmark: collector-on vs collector-off.

Same methodology as :mod:`bench_telemetry_overhead` — the quickstart's
controlled run (which exercises every instrumented hook: ``simkit.run``
batches, ``control.tick`` / ``control.cpa_query`` timers) is timed in
interleaved off/on pairs, and the asserted statistic is the median of
pairwise deltas.  The acceptance bar is the same 5% budget: with the
collector *installed*, end-to-end wall time must not move more than 5%.

The disabled path is asserted separately in the tier-1 suite
(``tests/test_perf_cli.py`` proves byte-identical runs); this benchmark
bounds the *enabled* cost, which is the honest number — "near zero when
off" is only useful if "on" is cheap enough to leave on.
"""

import gc
import statistics
import time

from repro.perf import instrument as perf_instrument

from bench_telemetry_overhead import _controlled_run  # noqa: F401  (trains once)

PAIRS = 15
#: Consecutive controlled runs per timing sample.  A single run is ~tens
#: of milliseconds — small enough that scheduler noise on a shared box
#: swamps a 5% effect — so each sample times a batch.
RUNS_PER_SAMPLE = 5
MAX_OVERHEAD = 0.05


def _sample() -> float:
    start = time.perf_counter()
    for _ in range(RUNS_PER_SAMPLE):
        _controlled_run()
    return time.perf_counter() - start


def test_perf_collector_overhead_under_five_percent():
    _controlled_run()  # warm imports, allocator, and code paths
    _controlled_run()
    gc.disable()
    try:
        deltas = []
        for _ in range(PAIRS):
            off = _sample()
            with perf_instrument.collecting():
                on = _sample()
            deltas.append((on - off) / off)
    finally:
        gc.enable()
    overhead = statistics.median(deltas)
    print(f"\nperf-collector overhead: median of {PAIRS} pairwise deltas = "
          f"{overhead * 100:+.2f}% "
          f"(spread {min(deltas) * 100:+.1f}% .. {max(deltas) * 100:+.1f}%)")
    assert overhead < MAX_OVERHEAD, (
        f"collected run {overhead * 100:.1f}% slower than uncollected "
        f"(budget {MAX_OVERHEAD * 100:.0f}%)"
    )


def test_collector_saw_the_hot_paths():
    """The overhead number is only meaningful if the collector actually
    recorded the instrumented hooks during a controlled run."""
    collector = perf_instrument.PerfCollector()
    with perf_instrument.collecting(collector):
        _controlled_run()
    snapshot = collector.snapshot()
    assert snapshot["counters"].get("simkit.events_dispatched", 0) > 0
    assert "control.tick" in snapshot["timers"]
    assert "control.cpa_query" in snapshot["timers"]
    assert "simkit.run" in snapshot["timers"]


def test_default_collector_is_null():
    assert perf_instrument.COLLECTOR is perf_instrument.NULL
    assert not perf_instrument.COLLECTOR.enabled
