"""Extension: co-executing SLO jobs — independent Jockeys vs the arbiter."""

from repro.experiments import exp_multijob


def test_multijob_coordination(benchmark, scale, save_report):
    (report,) = benchmark.pedantic(
        lambda: save_report(exp_multijob.run(scale)), rounds=1, iterations=1
    )
    assert len(report.rows) == 2
