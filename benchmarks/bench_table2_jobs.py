"""Table 2 + Fig. 3: evaluation job statistics and stage DAGs."""

from repro.experiments import exp_table2


def test_table2_jobs(benchmark, scale, save_report):
    (report,) = benchmark.pedantic(
        lambda: save_report(exp_table2.run(scale)), rounds=1, iterations=1
    )
    assert report.rows
