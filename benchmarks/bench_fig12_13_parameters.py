"""Fig. 12 + Fig. 13: slack and hysteresis sweeps."""

from repro.experiments import exp_fig12_13


def test_fig12_slack(benchmark, scale, save_report):
    (report,) = benchmark.pedantic(
        lambda: save_report(exp_fig12_13.run_fig12(scale)), rounds=1, iterations=1
    )
    assert len(report.rows) == len(exp_fig12_13.SLACK_VALUES)


def test_fig13_hysteresis(benchmark, scale, save_report):
    (report,) = benchmark.pedantic(
        lambda: save_report(exp_fig12_13.run_fig13(scale)), rounds=1, iterations=1
    )
    assert len(report.rows) == len(exp_fig12_13.HYSTERESIS_VALUES)
