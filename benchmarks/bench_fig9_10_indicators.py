"""Fig. 9 + Fig. 10: job progress indicator comparison."""

from repro.experiments import exp_fig9_10


def test_fig9_fig10_indicators(benchmark, scale, save_report):
    fig9, fig10 = benchmark.pedantic(
        lambda: save_report(*exp_fig9_10.run(scale)), rounds=1, iterations=1
    )
    assert fig9.extra_sections
    assert len(fig10.rows) == 6
