"""Benchmark: generating the SLO run report from a finished experiment.

Runs one Jockey-controlled job and saves its full observatory output —
SLO attainment summary, risk timeline, prediction scorecard, and the
rendered text report — under ``results/``.  The point is to exercise the
whole report path at benchmark time (the HTML path is covered by tests)
and keep a human-readable attainment digest alongside the paper tables.
"""

import json
import pathlib

from repro.experiments.reporting import ExperimentReport
from repro.experiments.runner import RunConfig, make_policy, run_experiment
from repro.experiments.scenarios import trained_job
from repro.telemetry import report as telemetry_report

RESULTS_DIR = pathlib.Path(__file__).resolve().parent.parent / "results"


def test_slo_report(scale, save_report):
    name = "A" if "A" in scale.jobs else scale.jobs[0]
    tj = trained_job(name, seed=0, scale=scale)
    result = run_experiment(
        tj,
        make_policy("jockey", tj, tj.short_deadline),
        RunConfig(deadline_seconds=tj.short_deadline, seed=3,
                  sample_cluster_day=False),
    )
    slo = result.slo_report(table=tj.table)
    run_report = telemetry_report.from_result(result, table=tj.table)

    RESULTS_DIR.mkdir(exist_ok=True)
    html_path = RESULTS_DIR / "slo-report.html"
    telemetry_report.write(run_report, str(html_path))

    report = ExperimentReport(
        experiment_id="slo-report",
        title=f"SLO attainment for one jockey run of job {name}",
    )
    report.add_section(json.dumps(slo.summary(), indent=2, sort_keys=True))
    report.add_section(telemetry_report.render_text(run_report))
    report.add_note(f"full HTML report: {html_path}")
    save_report(report)

    assert slo.duration > 0
    assert html_path.stat().st_size > 0
