"""Simkit scaling trajectory: events/sec vs run size, gated against a
committed baseline.

The workload is a synthetic event storm on the bare :class:`Simulator`,
shaped like a million-task run: most events come from *completion waves* —
homogeneous batches pushed through ``schedule_batch`` with a shared payload
callback, the exact shape of the job manager's wave starts — interleaved
with self-rescheduling control chains (deterministic pseudo-random delays)
and a steady drip of scheduled-then-cancelled victim events whose long
horizons force the heap compactor to do real work.  No RNG, no job model:
this measures the event loop itself (tuple heap push/pop, batched merges,
handle pooling, cancellation shedding), which is exactly the hot path the
ROADMAP's million-task refactor rebuilt.

Each run size dispatches exactly ``size`` events; the digest records the
best-of-``reps`` events/sec per size, the perf collector's phase split
(build vs run), compaction counts, and the process peak RSS after each
size (``ru_maxrss`` is monotone, so per-size values are cumulative highs).

Regression gate: when ``results/bench_sim_scale.json`` already exists, the
fresh numbers are compared size-by-size and any events/sec drop beyond
``TOLERANCE`` is recorded in the digest — and *fails the test* when
``REPRO_PERF_ENFORCE=1`` (the CI perf-digest job sets it; local runs on
arbitrary hardware only record).  The trajectory sanity asserts (positive
throughput everywhere, bounded events/sec decay at the largest size, and
the wave-retention floor: the largest size must hold ``WAVE_RETENTION`` of
the 1e4 row's events/sec) always fire.
"""

import json
import os
import pathlib
import time
from collections import deque

from repro.perf import digest as perf_digest
from repro.perf import instrument as perf_instrument
from repro.simkit.events import Simulator

RESULTS_DIR = pathlib.Path(__file__).resolve().parent.parent / "results"
DIGEST_PATH = RESULTS_DIR / "bench_sim_scale.json"

#: Allowed events/sec drop vs the committed baseline before CI fails.
TOLERANCE = 0.15

#: The largest size must keep at least this fraction of the best size's
#: events/sec — heap ops are O(log n), so a collapse means a real leak.
MIN_SCALE_RETENTION = 0.20

#: The largest size must also keep this fraction of the *1e4* row — the
#: flat-or-better retention target of the batched-dispatch refactor.
WAVE_RETENTION = 0.80
WAVE_RETENTION_ANCHOR = 10_000

#: Absolute sanity floor: below this the host is unusable for benching.
MIN_EVENTS_PER_SEC = 10_000

SMOKE_SIZES = (1_000, 10_000, 100_000)
FULL_SIZES = SMOKE_SIZES + (1_000_000,)

#: Parallel self-rescheduling control chains driving the storm.
CHAINS = 8
#: Concurrent completion waves, each re-launching itself on drain...
WAVES = 2
#: ...with this many batch-scheduled task completions per launch.
WAVE_SIZE = 192
#: One victim event is scheduled every this many chain steps...
VICTIM_EVERY = 4
#: ...and cancelled once this many victims are outstanding.  Victim
#: horizons are long (~200s virtual), so cancelled entries pile up in the
#: heap until the compactor sheds them.
VICTIM_BACKLOG = 32

#: Per-task completion offsets inside a wave: a fixed integer mix, so the
#: storm is identical on every host and run.
_WAVE_OFFSETS = tuple(
    1.0 + ((i * 2654435761) & 0xFFFF) / 16384.0 for i in range(WAVE_SIZE)
)


def _sizes() -> tuple:
    scale = os.environ.get("REPRO_SCALE", "default")
    return SMOKE_SIZES if scale == "smoke" else FULL_SIZES


def _noop() -> None:
    pass


def _build_storm(sim: Simulator) -> None:
    """Arm the composite storm: completion waves + chains + victim drip.

    Delays come from integer mixes of (chain, step) and the wave offset
    table — no RNG object, so the storm is identical on every host and
    run."""
    victims = deque()
    call_after = sim.call_after
    schedule = sim.schedule
    batch = sim.schedule_batch

    def make_chain(chain: int):
        step = 0
        base = chain * 2654435761

        def fire() -> None:
            nonlocal step
            step += 1
            mixed = (base + step * 40503) & 0xFFFF
            call_after(0.25 + mixed / 65536.0, fire)
            if step % VICTIM_EVERY == 0:
                victims.append(schedule(200.0 + mixed / 256.0, _noop))
                if len(victims) > VICTIM_BACKLOG:
                    victims.popleft().cancel()

        return fire

    def make_wave():
        remaining = 0
        payloads = range(WAVE_SIZE)

        def task_done(_index: int) -> None:
            nonlocal remaining
            remaining -= 1
            if not remaining:
                launch()

        def launch() -> None:
            nonlocal remaining
            remaining = WAVE_SIZE
            now = sim.now
            batch([now + off for off in _WAVE_OFFSETS], task_done, payloads)

        return launch

    for chain in range(CHAINS):
        call_after(0.001 * (chain + 1), make_chain(chain))
    for _ in range(WAVES):
        make_wave()()


def run_storm(size: int) -> dict:
    """Dispatch exactly ``size`` events; returns the measured row."""
    perf = perf_instrument.PerfCollector()
    with perf_instrument.collecting(perf):
        with perf.phase("build"):
            sim = Simulator()
            _build_storm(sim)
        with perf.phase("run"):
            start = time.perf_counter()
            sim.run(max_events=size)
            wall = time.perf_counter() - start
    snapshot = perf.snapshot()
    assert sim.events_dispatched == size
    return {
        "events": size,
        "wall_seconds": round(wall, 6),
        "events_per_sec": round(size / wall, 1) if wall > 0 else 0.0,
        "phases": {
            path: round(info["seconds"], 6)
            for path, info in snapshot["phases"].items()
        },
        "compactions": int(
            snapshot["counters"].get("simkit.compactions", 0)
        ),
        "heap_peak": int(snapshot["maxima"].get("simkit.heap_peak", 0)),
        "peak_rss_kb": perf_digest.peak_rss_kb(),
    }


def measure(sizes) -> list:
    rows = []
    for size in sizes:
        reps = 3 if size <= 100_000 else 2
        best = None
        for _ in range(reps):
            row = run_storm(size)
            if best is None or row["events_per_sec"] > best["events_per_sec"]:
                best = row
        rows.append(best)
    return rows


def test_sim_scale_trajectory():
    sizes = _sizes()
    rows = measure(sizes)

    payload = {
        "benchmark": "sim_scale",
        "scale": os.environ.get("REPRO_SCALE", "default"),
        "chains": CHAINS,
        "waves": WAVES,
        "wave_size": WAVE_SIZE,
        "tolerance": TOLERANCE,
        "sizes": rows,
    }

    # Compare against the committed baseline *before* overwriting it.
    enforce = os.environ.get("REPRO_PERF_ENFORCE") == "1"
    regressions = []
    payload["baseline_compared"] = False
    if DIGEST_PATH.exists():
        try:
            baseline = perf_digest.read_digest(DIGEST_PATH)
        except (perf_digest.DigestError, json.JSONDecodeError):
            baseline = None
        if baseline is not None and baseline.get("sizes"):
            regressions = perf_digest.compare_events_per_sec(
                payload, baseline, tolerance=TOLERANCE
            )
            payload["baseline_compared"] = True
    payload["regressions"] = [
        {
            "events": events,
            "events_per_sec": new_eps,
            "baseline_events_per_sec": base_eps,
            "ratio": round(ratio, 3),
        }
        for events, new_eps, base_eps, ratio in regressions
    ]
    payload["regression_enforced"] = enforce

    RESULTS_DIR.mkdir(exist_ok=True)
    perf_digest.write_digest(DIGEST_PATH, payload)

    eps = [row["events_per_sec"] for row in rows]
    print("\nsim scale trajectory:")
    for row in rows:
        print(f"  {row['events']:>9d} events: "
              f"{row['events_per_sec']:>12,.0f} events/sec "
              f"({row['compactions']} compactions, heap peak "
              f"{row['heap_peak']}, rss {row['peak_rss_kb']} KiB)")

    assert len(rows) >= 3, "trajectory needs at least three run sizes"
    assert all(e > 0 for e in eps), f"degenerate throughput row: {rows}"
    assert max(eps) >= MIN_EVENTS_PER_SEC, (
        f"host too slow/noisy to bench: best {max(eps):,.0f} events/sec"
    )
    assert eps[-1] >= MIN_SCALE_RETENTION * max(eps), (
        f"events/sec collapsed at {sizes[-1]:,} events: "
        f"{eps[-1]:,.0f} vs best {max(eps):,.0f} — superlinear slowdown "
        "in the event loop"
    )
    anchor = {row["events"]: row["events_per_sec"] for row in rows}.get(
        WAVE_RETENTION_ANCHOR
    )
    if anchor and sizes[-1] > WAVE_RETENTION_ANCHOR:
        assert eps[-1] >= WAVE_RETENTION * anchor, (
            f"retention floor broken: {sizes[-1]:,} events ran at "
            f"{eps[-1]:,.0f} events/sec, below {WAVE_RETENTION:.0%} of the "
            f"{WAVE_RETENTION_ANCHOR:,}-event row ({anchor:,.0f})"
        )
    if enforce:
        assert not regressions, (
            "events/sec regressed beyond "
            f"{TOLERANCE * 100:.0f}% vs the committed baseline: "
            + "; ".join(
                f"{e:,} events {n:,.0f} vs {b:,.0f} ({r:.2f}x)"
                for e, n, b, r in regressions
            )
        )


def test_storm_is_deterministic():
    """Two storms of the same size dispatch identical event sequences —
    the bench measures the loop, not workload luck."""
    a, b = Simulator(), Simulator()
    _build_storm(a)
    _build_storm(b)
    a.run(max_events=5_000)
    b.run(max_events=5_000)
    assert a.now == b.now
    assert a.events_scheduled == b.events_scheduled
    assert a.heap_size == b.heap_size
    assert a.compactions == b.compactions
