"""Shared benchmark scaffolding.

Each benchmark regenerates one of the paper's tables/figures and saves the
rendered report under ``results/``.  Scale is selected with the
``REPRO_SCALE`` environment variable (``smoke``, ``default`` — the normal
benchmark setting — or ``paper`` for full experiment counts).
"""

import os
import pathlib

import pytest

from repro.experiments.scenarios import SCALES

RESULTS_DIR = pathlib.Path(__file__).resolve().parent.parent / "results"


@pytest.fixture(scope="session")
def scale():
    name = os.environ.get("REPRO_SCALE", "default")
    if name not in SCALES:
        raise ValueError(f"REPRO_SCALE must be one of {sorted(SCALES)}")
    return SCALES[name]


@pytest.fixture(scope="session")
def save_report():
    RESULTS_DIR.mkdir(exist_ok=True)

    def _save(*reports):
        for report in reports:
            path = RESULTS_DIR / f"{report.experiment_id.replace('+', '_')}.txt"
            path.write_text(report.render() + "\n", encoding="utf-8")
            print()
            print(report.render())
        return reports

    return _save
