"""Fig. 1: inter-job dependency CDFs."""

from repro.experiments import exp_fig1


def test_fig1_pipelines(benchmark, scale, save_report):
    (report,) = benchmark.pedantic(
        lambda: save_report(exp_fig1.run(scale)), rounds=1, iterations=1
    )
    assert len(report.rows) == 4
