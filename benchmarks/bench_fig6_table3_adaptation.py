"""Fig. 6 + Table 3: dynamic adaptation case studies."""

from repro.experiments import exp_fig6_table3


def test_fig6_table3_adaptation(benchmark, scale, save_report):
    fig6, table3 = benchmark.pedantic(
        lambda: save_report(*exp_fig6_table3.run(scale)), rounds=1, iterations=1
    )
    assert fig6.extra_sections
    assert table3.rows
