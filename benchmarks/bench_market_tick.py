"""Market tick latency at cluster scale.

The ISSUE's acceptance bar: one market tick over a thousand live jobs —
admission pass, guaranteed grants, the batched spare auction, and the
work drain — completes in under a second on CI hardware.  The workload
pins every knob against the fast paths' favor: every job is admitted up
front (maximal live set), work is sized so nobody finishes during the
measured ticks (no shrinking), and widths exceed guarantees so every job
bids for spare tokens every tick (maximal auction size).

The digest (``results/bench_market_tick.json``) records per-tick wall
times and the market's own ``market.tick`` perf phase so the perf
observatory can track the trajectory.
"""

import json
import pathlib
import time

from repro.market.engine import MarketConfig, TokenMarket
from repro.market.tenant import JobSpec, Tenant
from repro.perf import instrument as perf_instrument

RESULTS_DIR = pathlib.Path(__file__).resolve().parent.parent / "results"
DIGEST_PATH = RESULTS_DIR / "bench_market_tick.json"

JOBS = 1000
TENANTS = 10
WIDTH = 8
#: In-bench acceptance bar (seconds per tick).
TICK_BUDGET_SECONDS = 1.0
MEASURED_TICKS = 5


def build_market() -> TokenMarket:
    """A market with exactly ``JOBS`` live-from-tick-0 jobs.

    Deadlines are loose (guarantee = 1 token each) and work is deep, so
    every job stays live and bids ``WIDTH - 1`` spare entries per tick —
    the auction never shrinks during the measurement window.
    """
    per_tenant = JOBS // TENANTS
    tenants = [
        Tenant(name=f"t{t:02d}", quota=per_tenant)
        for t in range(TENANTS)
    ]
    jobs = [
        JobSpec(
            name=f"t{t:02d}-j{i:04d}",
            tenant=f"t{t:02d}",
            work=1e9,                      # never finishes in-bench
            width=WIDTH,
            deadline_seconds=2e9,          # guarantee = 1
        )
        for t in range(TENANTS)
        for i in range(per_tenant)
    ]
    config = MarketConfig(capacity=2 * JOBS, mode="pooled")
    return TokenMarket(tenants, jobs, config)


def test_thousand_job_tick_under_a_second():
    market = build_market()
    perf = perf_instrument.PerfCollector()
    with perf_instrument.collecting(perf):
        # Tick 0 includes the admission pass over all 1000 queued jobs.
        admit_start = time.perf_counter()
        market.step()
        admit_tick = time.perf_counter() - admit_start
        assert len(market.live_jobs) == JOBS

        tick_walls = []
        for _ in range(MEASURED_TICKS):
            start = time.perf_counter()
            sample = market.step()
            tick_walls.append(time.perf_counter() - start)
            assert sample.live == JOBS
            # The auction is really running at full size: every job holds
            # its guarantee and the spare pool is contended.
            assert sample.guaranteed == JOBS
            assert sample.spare == JOBS
    snapshot = perf.snapshot()

    payload = {
        "benchmark": "market_tick",
        "jobs": JOBS,
        "tenants": TENANTS,
        "width": WIDTH,
        "budget_seconds": TICK_BUDGET_SECONDS,
        "admission_tick_seconds": round(admit_tick, 6),
        "tick_seconds": [round(w, 6) for w in tick_walls],
        "best_tick_seconds": round(min(tick_walls), 6),
        "worst_tick_seconds": round(max(tick_walls), 6),
        "perf_market_tick": snapshot["phases"].get("market.tick"),
    }
    RESULTS_DIR.mkdir(exist_ok=True)
    DIGEST_PATH.write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n",
        encoding="utf-8",
    )
    print(
        f"\nmarket tick x{JOBS} jobs: best "
        f"{payload['best_tick_seconds'] * 1000:.1f}ms, worst "
        f"{payload['worst_tick_seconds'] * 1000:.1f}ms, admission tick "
        f"{payload['admission_tick_seconds'] * 1000:.1f}ms"
    )

    # The acceptance bar, asserted in-bench: a 1000-job market tick
    # (including the admission-heavy first one) fits the budget.
    assert max(tick_walls) < TICK_BUDGET_SECONDS
    assert admit_tick < TICK_BUDGET_SECONDS
