"""C(p, a) query benchmark: O(1) presorted lookups vs per-call np.quantile.

Before the vectorization pass, every ``remaining()`` call re-ran
``np.quantile`` over the raw sample bins — twice when the allocation fell
between grid points.  The columns now presort their samples at build time
so a quantile is index arithmetic.  This benchmark replays the seed
implementation against the same table and asserts the new per-call path
is at least 5x faster; it also times the batched ``remaining_curve``
against the equivalent scalar loop (the control loop's allocation scan).
"""

import bisect
import pathlib
import time

import numpy as np

from repro.core.cpa import CpaTable
from repro.core.progress import totalwork
from repro.perf.digest import write_digest

from bench_cpa_build import bench_profile

RESULTS_DIR = pathlib.Path(__file__).resolve().parent.parent / "results"

MIN_QUERY_SPEEDUP = 5.0

QS = (0.1, 0.5, 0.6, 0.9)
PROGRESS = tuple(i / 20 for i in range(20))
ROUNDS = 12


def _baseline_remaining(table, progress, allocation, q):
    """The pre-optimization algorithm: np.quantile over the raw bin per
    query, with the same clamp/bisect interpolation across allocations."""
    idx = table._bin_index(progress)

    def qv(a):
        return float(np.quantile(table._columns[a].bins[idx], q))

    grid = table.allocations
    allocation = float(allocation)
    if allocation <= grid[0]:
        return qv(grid[0])
    if allocation >= grid[-1]:
        return qv(grid[-1])
    hi_pos = bisect.bisect_left(grid, allocation)
    lo_a, hi_a = grid[hi_pos - 1], grid[hi_pos]
    if hi_a == allocation:
        return qv(hi_a)
    lo_v, hi_v = qv(lo_a), qv(hi_a)
    w = (allocation - lo_a) / (hi_a - lo_a)
    return lo_v + (hi_v - lo_v) * w


def test_query_speedup_vs_np_quantile():
    profile = bench_profile()
    table = CpaTable.build(
        profile,
        totalwork(profile),
        allocations=(5, 10, 20, 40),
        reps=6,
        num_bins=50,
        sample_dt=5.0,
        seed=7,
    )
    # Mix of off-grid (interpolating, the controller's common case) and
    # on-grid allocations.
    allocations = (5, 7.5, 10, 13, 20, 27, 33, 40)
    queries = [
        (p, a, q) for p in PROGRESS for a in allocations for q in QS
    ]

    # Same answers first: a fast wrong path is not a speedup.
    for p, a, q in queries:
        assert table.remaining(p, a, q=q) == (
            _baseline_remaining(table, p, a, q)
        ) or abs(
            table.remaining(p, a, q=q) - _baseline_remaining(table, p, a, q)
        ) <= 1e-9 * max(1.0, abs(_baseline_remaining(table, p, a, q)))

    start = time.perf_counter()
    for _ in range(ROUNDS):
        for p, a, q in queries:
            _baseline_remaining(table, p, a, q)
    baseline_s = time.perf_counter() - start

    start = time.perf_counter()
    for _ in range(ROUNDS):
        for p, a, q in queries:
            table.remaining(p, a, q=q)
    fast_s = time.perf_counter() - start

    calls = ROUNDS * len(queries)
    speedup = baseline_s / fast_s if fast_s > 0 else float("inf")

    # The batched scan the control loop actually issues.
    grid = list(range(5, 41))
    start = time.perf_counter()
    for _ in range(ROUNDS):
        for p in PROGRESS:
            for a in grid:
                table.remaining(p, a, q=0.6)
    scalar_scan_s = time.perf_counter() - start
    start = time.perf_counter()
    for _ in range(ROUNDS):
        for p in PROGRESS:
            table.remaining_curve(p, grid, q=0.6)
    batch_scan_s = time.perf_counter() - start
    batch_speedup = (
        scalar_scan_s / batch_scan_s if batch_scan_s > 0 else float("inf")
    )

    RESULTS_DIR.mkdir(exist_ok=True)
    digest = {
        "benchmark": "cpa_query",
        "calls": calls,
        "np_quantile_baseline_us_per_call": round(baseline_s / calls * 1e6, 3),
        "presorted_us_per_call": round(fast_s / calls * 1e6, 3),
        "speedup": round(speedup, 2),
        "min_required_speedup": MIN_QUERY_SPEEDUP,
        "scan_scalar_seconds": round(scalar_scan_s, 4),
        "scan_batched_seconds": round(batch_scan_s, 4),
        "scan_batch_speedup": round(batch_speedup, 2),
    }
    write_digest(RESULTS_DIR / "bench_cpa_query.json", digest)
    print(f"\nC(p, a) query: np.quantile {baseline_s / calls * 1e6:.1f}us, "
          f"presorted {fast_s / calls * 1e6:.1f}us per call "
          f"({speedup:.1f}x); batched scan {batch_speedup:.1f}x")

    assert speedup >= MIN_QUERY_SPEEDUP, (
        f"expected >= {MIN_QUERY_SPEEDUP}x per-call speedup over "
        f"np.quantile, measured {speedup:.2f}x"
    )
    assert batch_speedup >= 1.0, "batched scan slower than scalar loop"
