"""§2.4 spare-variance and §3.2 quota-sizing motivation studies."""

from repro.experiments import exp_section24


def test_section24_motivation(benchmark, scale, save_report):
    sec24, sec32 = benchmark.pedantic(
        lambda: save_report(*exp_section24.run(scale)), rounds=1, iterations=1
    )
    assert sec24.rows
    assert len(sec32.rows) == 2
