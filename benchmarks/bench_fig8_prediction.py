"""Fig. 8: latency prediction accuracy, simulator vs Amdahl's Law."""

from repro.experiments import exp_fig8


def test_fig8_prediction(benchmark, scale, save_report):
    (report,) = benchmark.pedantic(
        lambda: save_report(exp_fig8.run(scale)), rounds=1, iterations=1
    )
    assert report.rows[-1][0] == "average"
