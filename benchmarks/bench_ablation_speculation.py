"""Ablation: straggler mitigation via speculative duplicates (extension, §4.4)."""

from repro.experiments import exp_ablation_speculation


def test_ablation_speculation(benchmark, scale, save_report):
    (report,) = benchmark.pedantic(
        lambda: save_report(exp_ablation_speculation.run(scale)),
        rounds=1,
        iterations=1,
    )
    assert len(report.rows) == len(exp_ablation_speculation.SETTINGS)
