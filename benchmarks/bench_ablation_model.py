"""Ablation: online model correction under heavy inputs (extension, §5.6)."""

from repro.experiments import exp_ablation_model


def test_ablation_online_model(benchmark, scale, save_report):
    (report,) = benchmark.pedantic(
        lambda: save_report(exp_ablation_model.run(scale)), rounds=1, iterations=1
    )
    assert len(report.rows) == len(exp_ablation_model.SCALE_FACTORS) * len(
        exp_ablation_model.POLICIES
    )
