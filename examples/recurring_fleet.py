#!/usr/bin/env python3
"""A recurring job's life across two weeks: learn, drift, recover.

Jockey's premise is *recurring* jobs — the C(p, a) model is trained on a
profile of a prior run.  This example simulates one nightly pipeline for
ten days with the input getting 1.6x heavier halfway through, under three
model-maintenance strategies:

* **stale** — profile once, never refresh (what a profile-once deployment
  degrades into after the workload shifts);
* **ewma**  — every run is re-profiled into the cross-run store; the drift
  detector notices the shift and rebuilds the model from an
  exponentially-weighted blend of the lineage;
* **oracle** — the model tracks the ground truth instantly (the upper
  bound no learner can beat).

Watch the stale arm start missing its deadline after the drift while the
drift-aware arm detects the shift and recovers within a day.

Run:  python examples/recurring_fleet.py
"""

from repro.chaos.spec import ProfileDrift
from repro.experiments.scenarios import SMOKE
from repro.fleet import FleetConfig, FleetTemplate, run_fleet

DAYS = 10
DRIFT = ProfileDrift(at=float(DAYS // 2), factor=1.6)


def show(result):
    summary = result.summaries[0]
    days = "".join(
        ("#" if row.rebuilt else "+" if row.met else ".")
        for row in result.rows
    )
    print(f"\n{summary.mode:>10}:  days {days}   "
          "(+ met, . missed, # rebuilt)")
    print(f"            attainment {100 * summary.attainment:.0f}%, "
          f"{summary.rebuilds} rebuild(s), "
          f"{summary.drift_detections} drift detection(s), "
          f"mean staleness {summary.mean_staleness_days:.1f} day(s)")
    for row in result.rows:
        if row.drift_significant:
            print(f"            day {row.day}: drift detected "
                  f"(work shift {row.drift_mean_shift:.2f}, "
                  f"max KS {row.drift_statistic:.2f})")


def main() -> None:
    print(f"simulating a nightly job for {DAYS} days; the input gets "
          f"{DRIFT.factor}x heavier on day {int(DRIFT.at)}")
    for mode in ("stale", "ewma", "oracle"):
        config = FleetConfig(
            days=DAYS,
            model_mode=mode,
            drift=DRIFT,
            scale=SMOKE,
            deadline_trim=1.0,
            seed=9,
        )
        show(run_fleet([FleetTemplate("A")], config))
    print("\nthe drift-aware store pays one rebuild to recover what the "
          "stale model keeps losing; `repro fleet run` scripts the same "
          "loop from the command line")


if __name__ == "__main__":
    main()
