#!/usr/bin/env python3
"""Admission control and global arbitration across SLO jobs.

The paper's per-job controller assumes a global layer decides (a) whether a
new SLO job *fits* the guaranteed slice and (b) how to split tokens when
several SLO jobs compete (§1, §4.4 — implemented here as
:mod:`repro.core.admission` and :mod:`repro.core.arbiter`).

This example trains three jobs, admits them against a 100-token slice, then
shows the arbiter shifting tokens toward the job with the tightest
deadline as progress diverges.

Run:  python examples/multi_job_admission.py
"""

from repro.core.admission import AdmissionController, SloRequest
from repro.core.arbiter import ArbiterJob, arbitrate
from repro.core.control import CpaPredictor
from repro.core.utility import deadline_utility
from repro.experiments.scenarios import DEFAULT, trained_job

SLICE_TOKENS = 100


def main() -> None:
    print("training jobs C, F, G...")
    jobs = {name: trained_job(name, seed=0, scale=DEFAULT) for name in "CFG"}

    # ------------------------------------------------------------------
    # Admission: do these jobs fit the 100-token guaranteed slice?
    # ------------------------------------------------------------------
    controller = AdmissionController(SLICE_TOKENS, slack=1.2, q=0.9)
    print(f"\nadmitting against a {SLICE_TOKENS}-token slice:")
    for name, tj in jobs.items():
        decision = controller.admit(
            SloRequest(name, tj.table, tj.short_deadline)
        )
        print(f"  job {name} (deadline {tj.short_deadline / 60:.0f} min): "
              f"{'ADMITTED' if decision.admitted else 'REJECTED'} — "
              f"{decision.reason}")

    # A job with an absurd deadline does not fit.
    tj = jobs["G"]
    decision = controller.evaluate(SloRequest("G-rush", tj.table, 300.0))
    print(f"  job G-rush (deadline 5 min): "
          f"{'ADMITTED' if decision.admitted else 'REJECTED'} — "
          f"{decision.reason}")

    # ------------------------------------------------------------------
    # Arbitration: split the slice by marginal utility as states diverge.
    # ------------------------------------------------------------------
    def arbiter_job(name, progress_fraction, elapsed):
        tj = jobs[name]
        fractions = {
            s: progress_fraction for s in tj.learned_profile.stage_names
        }
        return ArbiterJob(
            name=name,
            predictor=CpaPredictor(tj.table, tj.indicator, percentile=0.9),
            utility=deadline_utility(tj.short_deadline),
            fractions=fractions,
            elapsed_seconds=elapsed,
        )

    floor = min(jobs["C"].table.allocations)
    print("\nscenario 1 — all jobs fresh:")
    split = arbitrate(
        [arbiter_job("C", 0.0, 0.0), arbiter_job("F", 0.0, 0.0),
         arbiter_job("G", 0.0, 0.0)],
        SLICE_TOKENS,
        min_tokens=floor,
    )
    print(f"  {split}")

    print("\nscenario 2 — F is halfway through its deadline with only 20% "
          "done (in danger); C is 80% done:")
    split = arbitrate(
        [
            arbiter_job("C", 0.8, jobs["C"].short_deadline * 0.5),
            arbiter_job("F", 0.2, jobs["F"].short_deadline * 0.5),
            arbiter_job("G", 0.5, jobs["G"].short_deadline * 0.5),
        ],
        SLICE_TOKENS,
        min_tokens=floor,
    )
    print(f"  {split}")
    print("\nthe endangered job receives the largest share; the nearly-done "
          "job keeps the minimum.")


if __name__ == "__main__":
    main()
