#!/usr/bin/env python3
"""Straggler mitigation: speculative duplicates defending an SLO (§4.4).

The paper lists "the aggressiveness of mitigating stragglers" among the
control knobs that could broaden what Jockey can do.  Here a wide job's
ground truth is amplified so 5% of its tasks run up to 8x long — the
pre-barrier outliers that wreck deadlines — and Jockey runs with and
without speculative execution.

Run:  python examples/straggler_mitigation.py
"""

from dataclasses import replace

from repro.experiments.runner import RunConfig, make_policy, run_experiment
from repro.experiments.scenarios import DEFAULT, trained_job
from repro.jobs.profiles import JobProfile
from repro.runtime.speculation import SpeculationConfig
from repro.simkit.distributions import Truncated, WithOutliers


def amplify_stragglers(trained):
    """5% of tasks run up to 8x their sampled duration."""
    base = trained.generated.profile
    stages = {}
    for name in base.stage_names:
        sp = base.stage(name)
        runtime = sp.runtime
        if isinstance(runtime, Truncated):
            runtime = Truncated(
                WithOutliers(runtime.base, 0.05, 8.0), cap=runtime.cap * 2.5
            )
        stages[name] = replace(sp, runtime=runtime)
    heavier = replace(trained.generated, profile=JobProfile(trained.graph, stages))
    return replace(trained, generated=heavier)


def main() -> None:
    print("training job G...")
    tj = trained_job("G", seed=0, scale=DEFAULT)
    heavy = amplify_stragglers(tj)
    deadline = tj.short_deadline
    print(f"deadline {deadline / 60:.0f} min; ground truth amplified to 5% "
          f"stragglers up to 8x\n")

    for label, speculation in (
        ("speculation OFF", None),
        ("speculation ON (duplicate at 2.5x stage median)",
         SpeculationConfig(slowdown_factor=2.5)),
    ):
        result = run_experiment(
            heavy,
            make_policy("jockey", tj, deadline),
            RunConfig(
                deadline_seconds=deadline, seed=17, runtime_scale=1.0,
                sample_cluster_day=False, speculation=speculation,
            ),
        )
        m = result.metrics
        trace = result.trace
        superseded = sum(1 for r in trace.records if r.outcome == "superseded")
        verdict = "MET" if m.met_deadline else "MISSED"
        print(f"{label}:")
        print(f"  finished {m.duration_seconds / 60:.1f} min "
              f"({100 * m.relative_latency:.0f}% of deadline) -> {verdict}")
        print(f"  duplicate races: {superseded}, wasted work "
              f"{trace.wasted_cpu_seconds() / 3600:.2f} CPU-hours of "
              f"{trace.total_cpu_seconds() / 3600:.1f} total\n")

    print("speculation trades a little duplicated work for a much shorter "
          "straggler tail — complementary to Jockey's token control, as the "
          "paper suggests.")


if __name__ == "__main__":
    main()
