#!/usr/bin/env python3
"""Quickstart: give one job a latency SLO with Jockey.

Walks the full pipeline on a classic MapReduce-shaped job:

1. build the job (or bring your own DAG + profile);
2. run it once on the simulated cluster to collect a training trace;
3. learn a profile and precompute the C(p, a) remaining-time table;
4. run it again under the Jockey control loop against a deadline.

Run:  python examples/quickstart.py
"""

from repro.cache import get_or_build_table
from repro.cluster import Cluster, ClusterConfig
from repro.core import (
    ControlConfig,
    JockeyPolicy,
    deadline_utility,
    oracle_allocation,
    totalwork_with_q,
)
from repro.jobs import JobProfile, mapreduce_job
from repro.runtime import JobManager, run_to_completion
from repro.simkit import RngRegistry, Simulator

DEADLINE = 25 * 60.0  # 25 minutes, in seconds


def main() -> None:
    # ------------------------------------------------------------------
    # 1. The job: 400 maps feeding 40 reduces through a full shuffle.
    # ------------------------------------------------------------------
    job = mapreduce_job(num_maps=400, num_reduces=40,
                        map_median=20.0, map_p90=60.0,
                        reduce_median=45.0, reduce_p90=120.0)
    print(job.graph.render_ascii())

    # ------------------------------------------------------------------
    # 2. One training run at a fixed 40-token guarantee.
    # ------------------------------------------------------------------
    sim = Simulator()
    cluster = Cluster(sim, ClusterConfig(), rng=RngRegistry(1))
    training = run_to_completion(
        JobManager(cluster, job.graph, job.profile, initial_allocation=40)
    )
    print(f"\ntraining run: {training.duration / 60:.1f} min, "
          f"{training.total_cpu_seconds() / 3600:.1f} CPU-hours, "
          f"{training.spare_fraction():.0%} of tasks on spare tokens")

    # ------------------------------------------------------------------
    # 3. Learn the profile; precompute C(p, a).
    # ------------------------------------------------------------------
    learned = JobProfile.from_trace(job.graph, training)
    indicator = totalwork_with_q(learned)
    # Served from the on-disk model cache when this exact model was built
    # before (second runs of this script skip straight past the
    # simulations); REPRO_JOBS=4 fans a cold build out over processes.
    table = get_or_build_table(
        learned, indicator, indicator_kind="totalworkWithQ", seed=2,
        allocations=(10, 20, 30, 40, 60, 80, 100), reps=8,
    )
    print("\npredicted completion (q90) by steady allocation:")
    for a in table.allocations:
        print(f"  {a:>3} tokens -> {table.predicted_duration(a, q=0.9) / 60:6.1f} min")

    # ------------------------------------------------------------------
    # 4. An SLO run: fresh cluster conditions, Jockey in control.
    # ------------------------------------------------------------------
    policy = JockeyPolicy(
        table, indicator, deadline_utility(DEADLINE), ControlConfig(),
        profile=learned,
    )
    sim = Simulator()
    cluster = Cluster(sim, ClusterConfig(), rng=RngRegistry(99))
    manager = JobManager(
        cluster, job.graph, job.profile,
        initial_allocation=policy.initial_allocation(),
        deadline=DEADLINE,
    )
    sim.schedule_every(
        60.0,
        lambda: manager.finished or manager.set_allocation(
            policy.on_tick(manager.snapshot())
        ),
    )
    trace = run_to_completion(manager)

    oracle = oracle_allocation(trace.total_cpu_seconds(), DEADLINE)
    verdict = "MET" if trace.met_deadline() else "MISSED"
    print(f"\nSLO run: finished in {trace.duration / 60:.1f} min of a "
          f"{DEADLINE / 60:.0f}-min deadline -> {verdict}")
    print(f"  initial allocation : {trace.allocation_timeline[0][1]} tokens")
    print(f"  final allocation   : {trace.allocation_timeline[-1][1]} tokens")
    print(f"  oracle (theory min): {oracle} tokens")
    print(f"  evictions/failures : "
          f"{sum(1 for r in trace.records if r.outcome == 'evicted')}/"
          f"{sum(1 for r in trace.records if r.outcome == 'failed')}")


if __name__ == "__main__":
    main()
