#!/usr/bin/env python3
"""Surviving an overloaded cluster (paper Fig. 6(a) / Table 3).

The same job is run twice against the same deadline:

* a **calm** run under typical cluster conditions;
* an **overloaded** run: the input is 1.5x heavier than the training run
  *and* background demand surges 25% for the whole window — the conditions
  behind the paper's single missed deadline.

Watch the control loop notice the slow progress and climb the allocation
early in the overloaded run.

Run:  python examples/cluster_overload.py
"""

from repro.cluster import LoadEpisode
from repro.experiments.reporting import sparkline
from repro.experiments.runner import RunConfig, make_policy, run_experiment
from repro.experiments.scenarios import DEFAULT, trained_job


def show(title, result, deadline):
    m = result.metrics
    allocations = [a for _t, a in result.allocation_series]
    raw = [v for _t, v in result.raw_series]
    verdict = "MET" if m.met_deadline else "MISSED"
    print(f"\n{title}")
    print(f"  finished {m.duration_seconds / 60:.1f} min of "
          f"{deadline / 60:.0f} min -> {verdict} "
          f"({100 * m.relative_latency:.0f}% of deadline)")
    print(f"  requested allocation {sparkline(allocations)} "
          f"(start {allocations[0]}, peak {max(allocations)})")
    if raw:
        print(f"  raw (pre-hysteresis) {sparkline([float(v) for v in raw])} "
              f"(peak {max(raw)})")
    print(f"  evictions {m.evictions}, task failures {m.failures}, "
          f"{m.spare_fraction:.0%} of tasks on spare tokens")


def main() -> None:
    print("training job F...")
    tj = trained_job("F", seed=0, scale=DEFAULT)
    deadline = tj.short_deadline
    print(f"deadline: {deadline / 60:.0f} min; training run took "
          f"{tj.training_trace.duration / 60:.1f} min at "
          f"{DEFAULT.training_allocation} tokens")

    calm = run_experiment(
        tj,
        make_policy("jockey", tj, deadline),
        RunConfig(deadline_seconds=deadline, seed=5, runtime_scale=1.0,
                  sample_cluster_day=False),
    )
    show("calm cluster, trained-size input", calm, deadline)

    overloaded = run_experiment(
        tj,
        make_policy("jockey", tj, deadline),
        RunConfig(
            deadline_seconds=deadline,
            seed=6,
            runtime_scale=1.5,
            episodes=(LoadEpisode(0.0, deadline * 2, 1.25),),
            sample_cluster_day=False,
        ),
    )
    show("overloaded cluster, 1.5x-heavy input (jockey)", overloaded, deadline)

    static = run_experiment(
        tj,
        make_policy("jockey-no-adapt", tj, deadline),
        RunConfig(
            deadline_seconds=deadline,
            seed=6,
            runtime_scale=1.5,
            episodes=(LoadEpisode(0.0, deadline * 2, 1.25),),
            sample_cluster_day=False,
        ),
    )
    show("overloaded cluster, static allocation (no adaptation)", static,
         deadline)

    extra = (
        overloaded.metrics.allocation_token_seconds
        - calm.metrics.allocation_token_seconds
    )
    print(f"\nJockey spent {extra / 3600:+.1f} extra token-hours defending "
          f"the SLO under overload.  Like the paper's overloaded 'job 1' "
          f"(Table 3), it can finish a little late when the whole cluster "
          f"degrades — but adaptation caps the damage that a static quota "
          f"cannot.")


if __name__ == "__main__":
    main()
