#!/usr/bin/env python3
"""Post-hoc trace analysis: why did this run take as long as it did?

Runs job F once under Jockey, then applies the analysis toolkit: an
operational summary, a stage Gantt chart, the cluster-utilization
timeline, and the *realized* critical path — the actual chain of task
completions that determined the latency (operators use this to tell
"we were starved of tokens" apart from "one straggler held the barrier").

Run:  python examples/trace_analysis.py
"""

from repro.analysis import (
    critical_path_tasks,
    stage_gantt,
    summarize_trace,
    utilization_timeline,
)
from repro.experiments.reporting import sparkline
from repro.experiments.runner import RunConfig, make_policy, run_experiment
from repro.experiments.scenarios import DEFAULT, trained_job


def main() -> None:
    print("training job F and running it under Jockey...")
    tj = trained_job("F", seed=0, scale=DEFAULT)
    result = run_experiment(
        tj,
        make_policy("jockey", tj, tj.short_deadline),
        RunConfig(deadline_seconds=tj.short_deadline, seed=42),
    )
    trace = result.trace

    print("\n== summary ==")
    print(summarize_trace(trace, tj.graph))

    print("\n== stage Gantt (time ->) ==")
    print(stage_gantt(trace, width=64))

    print("\n== concurrency (mean running tasks per minute) ==")
    timeline = [v for _t, v in utilization_timeline(trace, bucket_seconds=60.0)]
    print(f"  {sparkline(timeline)}  (peak {max(timeline):.0f})")

    print("\n== realized critical path ==")
    chain = critical_path_tasks(trace, tj.graph)
    for link in chain[:12]:
        print(
            f"  {link.stage}[{link.index}]  "
            f"queued {link.queue_seconds:6.1f}s  "
            f"ran {link.end_time - link.start_time:6.1f}s  "
            f"(until t={link.end_time / 60:5.1f} min)"
        )
    if len(chain) > 12:
        print(f"  ... {len(chain) - 12} more links")


if __name__ == "__main__":
    main()
