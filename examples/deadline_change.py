#!/usr/bin/env python3
"""SLO renegotiation: changing a job's deadline while it runs (paper §5.2).

Ten minutes into a run we (a) halve the deadline of one job and (b) triple
the deadline of another.  Jockey reacts by acquiring or releasing
guaranteed tokens — the mechanism a future multi-job scheduler would use to
shift capacity toward the more important job.

Run:  python examples/deadline_change.py
"""

from repro.experiments.reporting import sparkline
from repro.experiments.runner import RunConfig, make_policy, run_experiment
from repro.experiments.scenarios import DEFAULT, trained_job

CHANGE_AT = 600.0  # t = 10 minutes


def show(title, result, old_deadline, new_deadline):
    m = result.metrics
    allocations = [a for _t, a in result.allocation_series]
    verdict = "MET" if m.duration_seconds <= new_deadline else "MISSED"
    print(f"\n{title}")
    print(f"  deadline {old_deadline / 60:.0f} min -> {new_deadline / 60:.0f} min "
          f"at t=10 min")
    print(f"  finished at {m.duration_seconds / 60:.1f} min "
          f"({100 * m.duration_seconds / new_deadline:.0f}% of the new "
          f"deadline) -> {verdict}")
    print(f"  allocation  {sparkline(allocations)}  "
          f"(start {allocations[0]}, peak {max(allocations)}, "
          f"end {allocations[-1]})")


def main() -> None:
    print("training job F (one profiling run + C(p, a) precompute)...")
    tj = trained_job("F", seed=0, scale=DEFAULT)

    # (a) Deadline cut in half: Jockey must accelerate.
    base = tj.long_deadline
    result = run_experiment(
        tj,
        make_policy("jockey", tj, base),
        RunConfig(
            deadline_seconds=base,
            seed=21,
            deadline_changes=((CHANGE_AT, base / 2),),
        ),
    )
    show("(a) deadline halved", result, base, base / 2)

    # (b) Deadline tripled: Jockey releases most of its tokens.
    base = tj.short_deadline
    result = run_experiment(
        tj,
        make_policy("jockey", tj, base),
        RunConfig(
            deadline_seconds=base,
            seed=22,
            deadline_changes=((CHANGE_AT, base * 3),),
        ),
    )
    show("(b) deadline tripled", result, base, base * 3)

    print("\npaper shape: every changed deadline met; halving needed ~+148% "
          "resources, tripling released ~83%.")


if __name__ == "__main__":
    main()
